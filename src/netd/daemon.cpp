#include "netd/daemon.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "kcc/serialize.hpp"
#include "support/log.hpp"
#include "support/serialize.hpp"
#include "support/status.hpp"
#include "support/str.hpp"
#include "vgpu/device.hpp"

namespace kspec::netd {

namespace {

constexpr std::uint32_t kHotKeysMagic = 0x544F484B;  // "KHOT"
constexpr std::uint32_t kHotKeysVersion = 1;

// Tenant name the startup prewarmer submits under, so its traffic is
// distinguishable from real tenants in the stats.
constexpr const char* kPrewarmTenant = "_prewarm";

}  // namespace

SpecDaemon::SpecDaemon(DaemonOptions options)
    : options_(std::move(options)),
      store_(options_.store_dir),
      executor_({.workers = options_.workers, .max_queue = options_.max_queue}) {
  KSPEC_CHECK_MSG(!options_.socket_path.empty(), "kspecd needs a socket path");
}

SpecDaemon::~SpecDaemon() { Stop(); }

void SpecDaemon::Start() {
  const int fd = ListenUnix(options_.socket_path);
  if (fd < 0) {
    throw Error("kspecd: cannot listen on '" + options_.socket_path +
                "': " + std::strerror(errno));
  }
  LoadHotKeys();

  // Hottest keys first; only ones the store does not already hold are worth a
  // prewarm flight.
  std::vector<std::pair<std::uint64_t, std::string>> ranked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    listen_fd_ = fd;
    running_ = true;
    for (const auto& [text, count] : key_counts_) ranked.emplace_back(count, text);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> hot;
  for (const auto& [count, text] : ranked) {
    if (hot.size() >= options_.prewarm_top_k) break;
    hot.push_back(text);
  }

  accept_thread_ = std::thread(&SpecDaemon::AcceptLoop, this);
  if (!hot.empty()) {
    prewarm_thread_ = std::thread(&SpecDaemon::PrewarmHotKeys, this, std::move(hot));
  }
  KSPEC_LOG_INFO << "kspecd: serving on " << options_.socket_path << " (store "
                 << options_.store_dir << ", " << options_.workers << " workers)";
}

void SpecDaemon::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [this] { return shutdown_requested_ || stopping_ || !running_; });
}

void SpecDaemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || !running_) return;
    stopping_ = true;
    // Severed under the lock: a handler only closes its fd after removing it
    // from conn_fds_ (also under the lock), so no fd here can have been
    // closed and reused.
    for (int cfd : conn_fds_) ::shutdown(cfd, SHUT_RDWR);
    // Wakes the blocked accept() (Linux: shutdown on a listening socket).
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    tenant_cv_.notify_all();
    stop_cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (prewarm_thread_.joinable()) prewarm_thread_.join();
  {
    // Handler threads are detached; wait for every one to retire (their
    // in-flight compiles finish normally — the executor is still up).
    std::unique_lock<std::mutex> lock(mu_);
    conns_cv_.wait(lock, [this] { return active_conns_ == 0; });
  }
  executor_.Drain();
  SaveHotKeys();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
  }
  ::unlink(options_.socket_path.c_str());
  KSPEC_LOG_INFO << "kspecd: stopped";
}

bool SpecDaemon::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_ && !stopping_;
}

void SpecDaemon::AcceptLoop() {
  for (;;) {
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // listener severed by Stop(), or fatal
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(cfd);
        return;
      }
      conn_fds_.push_back(cfd);
      ++active_conns_;  // counted before the thread exists: Stop() never misses it
    }
    std::thread(&SpecDaemon::HandleConnection, this, cfd).detach();
  }
}

void SpecDaemon::HandleConnection(int fd) {
  for (;;) {
    Frame frame;
    const RecvStatus rs = RecvFrame(fd, &frame);
    if (rs == RecvStatus::kClosed) break;
    if (rs != RecvStatus::kOk) {
      SendError(fd, ErrorCode::kBadRequest,
                rs == RecvStatus::kTooLarge ? "frame too large" : "malformed frame");
      break;
    }
    switch (frame.type) {
      case FrameType::kPing:
        if (!SendFrame(fd, FrameType::kOkResp, std::span<const std::uint8_t>{})) goto done;
        break;
      case FrameType::kStatsReq:
        if (!SendFrame(fd, FrameType::kStatsResp, StatsJson())) goto done;
        break;
      case FrameType::kShutdownReq: {
        SendFrame(fd, FrameType::kOkResp, std::span<const std::uint8_t>{});
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
        stop_cv_.notify_all();
        goto done;
      }
      case FrameType::kCompileReq: {
        // An undecodable body inside a well-formed frame is a bad request,
        // not a framing failure: answer it and keep the connection, exactly
        // like the bad-key and unknown-device paths inside HandleCompile.
        CompileReq req;
        bool decoded = true;
        try {
          req = DecodeCompileReq(frame.payload);
        } catch (const SerializeError& e) {
          decoded = false;
          if (!SendError(fd, ErrorCode::kBadRequest, e.what())) goto done;
        }
        if (decoded) HandleCompile(fd, req);
        break;
      }
      default:
        SendError(fd, ErrorCode::kBadRequest, "unexpected frame type");
        goto done;
    }
  }
done:
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd), conn_fds_.end());
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  --active_conns_;
  conns_cv_.notify_all();
}

bool SpecDaemon::SendError(int fd, ErrorCode code, const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (code != ErrorCode::kThrottled) ++stats_.errors;
  }
  ErrorBody err;
  err.code = code;
  err.message = message;
  return SendFrame(fd, FrameType::kErrorResp, EncodeError(err));
}

bool SpecDaemon::AcquireTenant(const std::string& tenant) {
  std::unique_lock<std::mutex> lock(mu_);
  TenantState& t = tenants_[tenant];
  const auto deadline = std::chrono::steady_clock::now() + options_.tenant_wait_cap;
  tenant_cv_.wait_until(lock, deadline, [&] {
    return t.inflight < options_.tenant_max_inflight || stopping_;
  });
  if (stopping_ || t.inflight >= options_.tenant_max_inflight) {
    ++t.throttled;
    ++stats_.throttled;
    return false;
  }
  ++t.inflight;
  return true;
}

void SpecDaemon::ReleaseTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  --tenants_[tenant].inflight;
  tenant_cv_.notify_all();
}

vcuda::Context& SpecDaemon::ContextFor(const std::string& device_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = contexts_.find(device_name);
  if (it == contexts_.end()) {
    vgpu::DeviceProfile profile = vgpu::ProfileByName(device_name);  // throws if unknown
    it = contexts_
             .emplace(device_name,
                      std::make_unique<vcuda::Context>(std::move(profile), options_.heap_bytes))
             .first;
  }
  return *it->second;
}

void SpecDaemon::HandleCompile(int fd, const CompileReq& creq) {
  kcc::ModuleCacheKey key;
  try {
    key = kcc::ModuleCacheKey::FromCanonicalText(creq.key_text);
  } catch (const SerializeError& e) {
    SendError(fd, ErrorCode::kBadRequest, e.what());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
    ++key_counts_[creq.key_text];
  }

  // Fast path: an earlier publish (any tenant, any daemon lifetime) already
  // holds the artifact.
  std::vector<std::uint8_t> bytes;
  if (store_.LoadBytes(key, &bytes)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.store_hits;
    }
    SendFrame(fd, FrameType::kArtifactResp, bytes);
    return;
  }

  if (!AcquireTenant(creq.tenant)) {
    SendError(fd, ErrorCode::kThrottled,
              Format("tenant '%s' exceeded %zu in-flight compiles", creq.tenant.c_str(),
                     options_.tenant_max_inflight));
    return;
  }
  struct TenantRelease {
    SpecDaemon* daemon;
    const std::string& tenant;
    ~TenantRelease() { daemon->ReleaseTenant(tenant); }
  } release{this, creq.tenant};

  vcuda::Context* ctx = nullptr;
  try {
    ctx = &ContextFor(key.device_name);
  } catch (const Error& e) {
    SendError(fd, ErrorCode::kBadRequest, e.what());
    return;
  }

  vcuda::CompileRequest req;
  req.source = key.source;
  req.opts = key.Options();
  req.tenant = creq.tenant;
  if (creq.deadline_ms > 0) {
    req.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(creq.deadline_ms);
  }
  const vcuda::SubmitResult r = executor_.SubmitLoad(*ctx, req);
  if (!r.ok()) {
    std::string reason = "compile queue full";
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.throttled;
      ++tenants_[creq.tenant].throttled;
      if (stopping_ || shutdown_requested_) reason = "daemon shutting down";
    }
    SendError(fd, reason == "compile queue full" ? ErrorCode::kThrottled
                                                 : ErrorCode::kShuttingDown,
              reason);
    return;
  }
  {
    // Cross-process single-flight accounting: all tenants share this
    // executor, so a kCoalesced whose flight another tenant scheduled is a
    // compile some *other process* paid for.
    std::lock_guard<std::mutex> lock(mu_);
    if (r.status == vcuda::SubmitStatus::kScheduled) {
      flight_origin_[creq.key_text] = creq.tenant;
    } else if (r.status == vcuda::SubmitStatus::kCoalesced) {
      auto it = flight_origin_.find(creq.key_text);
      if (it != flight_origin_.end() && it->second != creq.tenant) {
        ++stats_.cross_process_coalesced;
      }
    }
  }

  std::shared_ptr<vcuda::Module> module;
  try {
    module = r.future.get();
  } catch (const std::exception& e) {
    SendError(fd, ErrorCode::kCompileFailed, e.what());
    return;
  }
  if (!module) {
    SendError(fd, ErrorCode::kExpired, "deadline passed before a compile worker was free");
    return;
  }

  bytes = kcc::Serialize(module->compiled(), creq.key_text);
  // Coalesced waiters all land here; one publish suffices (and a racing
  // double publish is safe — atomic rename, identical content).
  if (!store_.Contains(key)) store_.PublishBytes(key, bytes);
  SendFrame(fd, FrameType::kArtifactResp, bytes);
}

void SpecDaemon::PrewarmHotKeys(std::vector<std::string> key_texts) {
  for (const std::string& text : key_texts) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    try {
      const kcc::ModuleCacheKey key = kcc::ModuleCacheKey::FromCanonicalText(text);
      if (store_.Contains(key)) continue;  // warm store already has it
      vcuda::Context& ctx = ContextFor(key.device_name);
      vcuda::CompileRequest req;
      req.source = key.source;
      req.opts = key.Options();
      req.tenant = kPrewarmTenant;
      const vcuda::SubmitResult r = executor_.Prewarm(ctx, req);
      if (!r.ok()) continue;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.prewarm_submitted;
      }
      if (auto module = r.future.get()) {
        if (!store_.Contains(key)) store_.Publish(key, module->compiled());
      }
    } catch (const std::exception& e) {
      KSPEC_LOG_WARN << "kspecd: prewarm of a persisted hot key failed: " << e.what();
    }
  }
}

void SpecDaemon::LoadHotKeys() {
  std::vector<std::uint8_t> bytes;
  if (!ReadFileBytes(options_.store_dir + "/hotkeys.bin", &bytes)) return;
  try {
    ByteReader r(bytes);
    if (r.U32() != kHotKeysMagic) throw SerializeError("bad hot-keys magic");
    if (r.U32() != kHotKeysVersion) throw SerializeError("hot-keys version mismatch");
    const std::uint32_t count = r.U32();
    std::lock_guard<std::mutex> lock(mu_);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::string text = r.Str();
      key_counts_[std::move(text)] += r.U64();
    }
  } catch (const SerializeError& e) {
    KSPEC_LOG_WARN << "kspecd: ignoring unreadable hot-key telemetry (" << e.what() << ")";
  }
}

void SpecDaemon::SaveHotKeys() const {
  ByteWriter w;
  w.U32(kHotKeysMagic);
  w.U32(kHotKeysVersion);
  {
    std::lock_guard<std::mutex> lock(mu_);
    w.U32(static_cast<std::uint32_t>(key_counts_.size()));
    for (const auto& [text, count] : key_counts_) {
      w.Str(text);
      w.U64(count);
    }
  }
  WriteFileAtomic(options_.store_dir + "/hotkeys.bin", w.bytes());
}

DaemonStats SpecDaemon::daemon_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DaemonStats d = stats_;
  // The exact fleet-wide compile count: module-cache misses summed over the
  // daemon's per-device contexts (flights that were memory-cache hits or
  // coalesced never compiled).
  for (const auto& [name, ctx] : contexts_) d.compiled += ctx->cache_stats().misses;
  return d;
}

serve::ServeStats SpecDaemon::serve_stats() const {
  serve::ServeStats s = executor_.stats();
  std::lock_guard<std::mutex> lock(mu_);
  s.throttled = stats_.throttled;
  s.cross_process_coalesced = stats_.cross_process_coalesced;
  for (const auto& [name, t] : tenants_) s.tenants[name].throttled = t.throttled;
  return s;
}

std::string SpecDaemon::StatsJson() const {
  const serve::ServeStats s = serve_stats();
  const StoreStats st = store_.stats();
  const DaemonStats d = daemon_stats();
  std::string out = "{\"serve\":" + s.ToJson();
  out += Format(",\"store\":{\"hits\":%llu,\"misses\":%llu,\"publishes\":%llu,"
                "\"corrupt_quarantined\":%llu,\"collisions\":%llu}",
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.publishes),
                static_cast<unsigned long long>(st.corrupt_quarantined),
                static_cast<unsigned long long>(st.collisions));
  out += Format(",\"daemon\":{\"requests\":%llu,\"store_hits\":%llu,\"compiled\":%llu,"
                "\"throttled\":%llu,\"errors\":%llu,\"prewarm_submitted\":%llu,"
                "\"cross_process_coalesced\":%llu}}",
                static_cast<unsigned long long>(d.requests),
                static_cast<unsigned long long>(d.store_hits),
                static_cast<unsigned long long>(d.compiled),
                static_cast<unsigned long long>(d.throttled),
                static_cast<unsigned long long>(d.errors),
                static_cast<unsigned long long>(d.prewarm_submitted),
                static_cast<unsigned long long>(d.cross_process_coalesced));
  return out;
}

}  // namespace kspec::netd
