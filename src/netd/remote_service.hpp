// Client side of the specialization service.
//
// RemoteCompileService is a serve::CompileExecutor whose flights fetch the
// compiled artifact instead of compiling: first from the shared ArtifactStore
// directly (no RPC — the common warm-fleet path), then from the kspecd daemon
// over the wire protocol, and only as a last resort (daemon unreachable or
// throttling, with fallback_local set) by compiling in-process. Because it
// subclasses the executor at the ExecuteFlight seam, every guarantee client
// code already depends on — single-flight coalescing, bounded-queue
// backpressure, deadlines, ServeStats — is inherited, and it slots into
// Context::set_async_service exactly like the local executor: LoadModuleAsync,
// TieredLoader promotion, and StageRunner policies work unchanged.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "netd/artifact_store.hpp"
#include "netd/protocol.hpp"
#include "serve/compile_executor.hpp"

namespace kspec::netd {

struct RemoteServiceOptions {
  // Daemon socket. Empty = no RPC; the store (and fallback) serve everything.
  std::string socket_path;
  // Shared artifact store for the direct-read fast path. Empty = RPC only.
  std::string store_dir;
  // Admission-control identity sent with every request.
  std::string tenant;
  // Local executor shape (worker threads here are fetchers, not compilers).
  int workers = 2;
  std::size_t max_queue = 64;
  // Bound on one RPC round trip (connect + compile + response). The daemon
  // compiles on first request, so this must cover a cold compile.
  std::chrono::milliseconds rpc_timeout{30000};
  // When the daemon is unreachable or throttling: true = compile in-process
  // (degraded but correct), false = fail the flight.
  bool fallback_local = true;
};

struct RemoteStats {
  std::uint64_t store_hits = 0;      // artifact read straight from the store
  std::uint64_t rpc_fetches = 0;     // artifact obtained from the daemon
  std::uint64_t rpc_errors = 0;      // connect/protocol/timeout failures
  std::uint64_t remote_throttled = 0;  // daemon answered kThrottled/kShuttingDown
  std::uint64_t local_fallbacks = 0;   // flights compiled in-process instead
};

class RemoteCompileService final : public serve::CompileExecutor {
 public:
  explicit RemoteCompileService(RemoteServiceOptions options);
  ~RemoteCompileService() override;  // must Shutdown() before members die

  RemoteCompileService(const RemoteCompileService&) = delete;
  RemoteCompileService& operator=(const RemoteCompileService&) = delete;

  RemoteStats remote_stats() const;

 protected:
  std::shared_ptr<vcuda::Module> ExecuteFlight(vcuda::Context& ctx,
                                               const vcuda::CompileRequest& req) override;

 private:
  // One RPC round trip. Returns the validated compiled module, or nullptr for
  // soft failures (unreachable / throttled / shutting down, tallied in
  // stats). Hard failures — the daemon says the source doesn't compile, or
  // the deadline expired — throw (CompileError / return-null via *expired).
  std::shared_ptr<const kcc::CompiledModule> FetchFromDaemon(const kcc::ModuleCacheKey& key,
                                                             const std::string& key_text,
                                                             std::uint32_t deadline_ms,
                                                             bool* expired);

  RemoteServiceOptions options_;
  std::unique_ptr<ArtifactStore> store_;  // null when store_dir is empty

  mutable std::mutex stats_mu_;
  RemoteStats remote_stats_;
};

}  // namespace kspec::netd
