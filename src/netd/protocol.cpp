#include "netd/protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/serialize.hpp"

namespace kspec::netd {

namespace {

// Restarts on EINTR; false on error or EOF before `n` bytes.
bool WriteAll(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not kill the
    // process with SIGPIPE.
    const ssize_t w = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

// Returns the byte count read before EOF/error (restarting on EINTR).
std::size_t ReadUpTo(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return done;
    }
    if (r == 0) return done;
    done += static_cast<std::size_t>(r);
  }
  return done;
}

std::uint32_t LoadU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t LoadU64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(LoadU32(p)) |
         (static_cast<std::uint64_t>(LoadU32(p + 4)) << 32);
}

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kCompileFailed: return "compile-failed";
    case ErrorCode::kThrottled: return "throttled";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kExpired: return "expired";
  }
  return "unknown";
}

std::vector<std::uint8_t> EncodeCompileReq(const CompileReq& req) {
  ByteWriter w;
  w.Str(req.tenant);
  w.Str(req.key_text);
  w.U32(req.deadline_ms);
  return w.Take();
}

CompileReq DecodeCompileReq(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  CompileReq req;
  req.tenant = r.Str();
  req.key_text = r.Str();
  req.deadline_ms = r.U32();
  if (!r.AtEnd()) throw SerializeError("trailing bytes after compile request");
  return req;
}

std::vector<std::uint8_t> EncodeError(const ErrorBody& err) {
  ByteWriter w;
  w.U8(static_cast<std::uint8_t>(err.code));
  w.Str(err.message);
  return w.Take();
}

ErrorBody DecodeError(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ErrorBody err;
  err.code = static_cast<ErrorCode>(r.U8());
  err.message = r.Str();
  if (!r.AtEnd()) throw SerializeError("trailing bytes after error body");
  return err;
}

bool SendFrame(int fd, FrameType type, std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFramePayload) return false;
  ByteWriter w;
  w.U32(kFrameMagic);
  w.U8(kProtocolVersion);
  w.U8(static_cast<std::uint8_t>(type));
  w.U8(0);
  w.U8(0);
  w.U64(payload.size());
  const std::vector<std::uint8_t>& header = w.bytes();
  if (!WriteAll(fd, header.data(), header.size())) return false;
  return payload.empty() || WriteAll(fd, payload.data(), payload.size());
}

bool SendFrame(int fd, FrameType type, const std::string& payload) {
  return SendFrame(fd, type,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size()));
}

RecvStatus RecvFrame(int fd, Frame* out) {
  std::uint8_t header[kFrameHeaderBytes];
  const std::size_t got = ReadUpTo(fd, header, sizeof(header));
  if (got == 0) return RecvStatus::kClosed;
  if (got < sizeof(header)) return RecvStatus::kMalformed;  // torn header
  if (LoadU32(header) != kFrameMagic) return RecvStatus::kMalformed;
  if (header[4] != kProtocolVersion) return RecvStatus::kMalformed;
  if (header[6] != 0 || header[7] != 0) return RecvStatus::kMalformed;
  const std::uint64_t len = LoadU64(header + 8);
  if (len > kMaxFramePayload) return RecvStatus::kTooLarge;
  out->type = static_cast<FrameType>(header[5]);
  out->payload.resize(static_cast<std::size_t>(len));
  if (len > 0 && ReadUpTo(fd, out->payload.data(), out->payload.size()) != out->payload.size()) {
    return RecvStatus::kMalformed;  // truncated mid-payload
  }
  return RecvStatus::kOk;
}

int ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  ::unlink(path.c_str());  // stale socket from a dead daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

bool SetRecvTimeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

}  // namespace kspec::netd
