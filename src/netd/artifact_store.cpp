#include "netd/artifact_store.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>

#include "kcc/serialize.hpp"
#include "support/log.hpp"
#include "support/serialize.hpp"
#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::netd {

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {
  KSPEC_CHECK_MSG(!dir_.empty(), "artifact store needs a directory");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) throw Error("artifact store: cannot create '" + dir_ + "': " + ec.message());
}

std::string ArtifactStore::PathFor(const kcc::ModuleCacheKey& key) const {
  return dir_ + "/" + key.FileName();
}

void ArtifactStore::Quarantine(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  const std::string aside = path + Format(".bad.%d.%llu", static_cast<int>(::getpid()),
                                          static_cast<unsigned long long>(counter.fetch_add(1)));
  if (std::rename(path.c_str(), aside.c_str()) != 0) ::unlink(path.c_str());
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.corrupt_quarantined;
}

bool ArtifactStore::LoadBytes(const kcc::ModuleCacheKey& key, std::vector<std::uint8_t>* out) {
  const std::string path = PathFor(key);
  std::vector<std::uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return false;
  }
  try {
    std::string stored_key;
    kcc::Deserialize(bytes, &stored_key);  // full parse: checksum, version, layout
    if (stored_key != key.CanonicalText()) {
      // A valid artifact for a different key under this hash-derived name.
      // Not corruption — don't quarantine; the caller's eventual publish of
      // this key overwrites it.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.collisions;
      ++stats_.misses;
      KSPEC_LOG_WARN << "artifact store: " << path
                     << " belongs to a different key (hash collision) — treating as miss";
      return false;
    }
  } catch (const SerializeError& e) {
    KSPEC_LOG_WARN << "artifact store: quarantining unreadable artifact " << path << " ("
                   << e.what() << ")";
    Quarantine(path);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
  }
  *out = std::move(bytes);
  return true;
}

std::shared_ptr<const kcc::CompiledModule> ArtifactStore::Load(const kcc::ModuleCacheKey& key) {
  std::vector<std::uint8_t> bytes;
  if (!LoadBytes(key, &bytes)) return nullptr;
  // LoadBytes already validated; a parse failure here would mean the bytes
  // changed in flight, which a local vector cannot.
  return std::make_shared<const kcc::CompiledModule>(kcc::Deserialize(bytes));
}

bool ArtifactStore::Publish(const kcc::ModuleCacheKey& key, const kcc::CompiledModule& mod) {
  const std::vector<std::uint8_t> bytes = kcc::Serialize(mod, key.CanonicalText());
  const std::string path = PathFor(key);
  if (!WriteFileAtomic(path, bytes)) {
    KSPEC_LOG_WARN << "artifact store: failed to publish " << path << " — continuing";
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.publishes;
  return true;
}

bool ArtifactStore::PublishBytes(const kcc::ModuleCacheKey& key,
                                 std::span<const std::uint8_t> bytes) {
  try {
    std::string stored_key;
    kcc::Deserialize(bytes, &stored_key);
    if (stored_key != key.CanonicalText()) {
      KSPEC_LOG_WARN << "artifact store: refusing to publish bytes keyed differently than "
                     << key.FileName();
      return false;
    }
  } catch (const SerializeError& e) {
    KSPEC_LOG_WARN << "artifact store: refusing to publish malformed artifact for "
                   << key.FileName() << " (" << e.what() << ")";
    return false;
  }
  const std::string path = PathFor(key);
  if (!WriteFileAtomic(path, bytes)) {
    KSPEC_LOG_WARN << "artifact store: failed to publish " << path << " — continuing";
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.publishes;
  return true;
}

bool ArtifactStore::Contains(const kcc::ModuleCacheKey& key) const {
  std::error_code ec;
  return std::filesystem::exists(PathFor(key), ec);
}

std::string ArtifactStore::PathForNative(const kcc::ModuleCacheKey& key) const {
  return dir_ + "/" + Format("k%016llx.nso", static_cast<unsigned long long>(key.Hash()));
}

bool ArtifactStore::LoadNativeBytes(const kcc::ModuleCacheKey& key,
                                    std::vector<std::uint8_t>* out) {
  return LoadNativeAt(PathForNative(key), key.CanonicalText(), out);
}

bool ArtifactStore::LoadNativeBytesNamed(const std::string& file_name,
                                         const std::string& key_text,
                                         std::vector<std::uint8_t>* out) {
  return LoadNativeAt(dir_ + "/" + file_name, key_text, out);
}

bool ArtifactStore::LoadNativeAt(const std::string& path, const std::string& key_text,
                                 std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.native_misses;
    return false;
  }
  try {
    std::string stored_key;
    kcc::DeserializeNative(bytes, &stored_key);  // checksum, version, layout
    if (stored_key != key_text) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.collisions;
      ++stats_.native_misses;
      KSPEC_LOG_WARN << "artifact store: " << path
                     << " belongs to a different key (hash collision) — treating as miss";
      return false;
    }
  } catch (const SerializeError& e) {
    KSPEC_LOG_WARN << "artifact store: quarantining unreadable native artifact " << path
                   << " (" << e.what() << ")";
    Quarantine(path);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.native_misses;
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.native_hits;
  }
  *out = std::move(bytes);
  return true;
}

bool ArtifactStore::PublishNativeBytes(const kcc::ModuleCacheKey& key,
                                       std::span<const std::uint8_t> bytes) {
  return PublishNativeAt(PathForNative(key), key.CanonicalText(), bytes);
}

bool ArtifactStore::PublishNativeBytesNamed(const std::string& file_name,
                                            const std::string& key_text,
                                            std::span<const std::uint8_t> bytes) {
  return PublishNativeAt(dir_ + "/" + file_name, key_text, bytes);
}

bool ArtifactStore::PublishNativeAt(const std::string& path, const std::string& key_text,
                                    std::span<const std::uint8_t> bytes) {
  try {
    std::string stored_key;
    kcc::DeserializeNative(bytes, &stored_key);
    if (stored_key != key_text) {
      KSPEC_LOG_WARN << "artifact store: refusing to publish native bytes keyed differently "
                        "than "
                     << path;
      return false;
    }
  } catch (const SerializeError& e) {
    KSPEC_LOG_WARN << "artifact store: refusing to publish malformed native artifact ("
                   << e.what() << ")";
    return false;
  }
  if (!WriteFileAtomic(path, bytes)) {
    KSPEC_LOG_WARN << "artifact store: failed to publish " << path << " — continuing";
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.native_publishes;
  return true;
}

bool ArtifactStore::ContainsNative(const kcc::ModuleCacheKey& key) const {
  std::error_code ec;
  return std::filesystem::exists(PathForNative(key), ec);
}

bool ArtifactStore::ContainsNativeNamed(const std::string& file_name) const {
  std::error_code ec;
  return std::filesystem::exists(dir_ + "/" + file_name, ec);
}

StoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace kspec::netd
