#include "netd/remote_service.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "kcc/serialize.hpp"
#include "support/log.hpp"
#include "support/serialize.hpp"
#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::netd {

namespace {

// Closes the RPC socket on every exit path.
struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

RemoteCompileService::RemoteCompileService(RemoteServiceOptions options)
    : serve::CompileExecutor({.workers = options.workers, .max_queue = options.max_queue}),
      options_(std::move(options)) {
  if (!options_.store_dir.empty()) {
    store_ = std::make_unique<ArtifactStore>(options_.store_dir);
  }
}

RemoteCompileService::~RemoteCompileService() {
  // The base destructor would also Shutdown(), but by then this object's
  // ExecuteFlight override (and store_) would already be destroyed under a
  // still-running worker. Stop the workers while we are whole.
  Shutdown();
}

RemoteStats RemoteCompileService::remote_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return remote_stats_;
}

std::shared_ptr<const kcc::CompiledModule> RemoteCompileService::FetchFromDaemon(
    const kcc::ModuleCacheKey& key, const std::string& key_text, std::uint32_t deadline_ms,
    bool* expired) {
  *expired = false;
  const int fd = ConnectUnix(options_.socket_path);
  if (fd < 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++remote_stats_.rpc_errors;
    return nullptr;
  }
  FdCloser closer{fd};
  SetRecvTimeout(fd, options_.rpc_timeout);

  CompileReq req;
  req.tenant = options_.tenant;
  req.key_text = key_text;
  req.deadline_ms = deadline_ms;
  Frame resp;
  if (!SendFrame(fd, FrameType::kCompileReq, EncodeCompileReq(req)) ||
      RecvFrame(fd, &resp) != RecvStatus::kOk) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++remote_stats_.rpc_errors;
    return nullptr;
  }

  if (resp.type == FrameType::kErrorResp) {
    ErrorBody err;
    try {
      err = DecodeError(resp.payload);
    } catch (const SerializeError&) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++remote_stats_.rpc_errors;
      return nullptr;
    }
    switch (err.code) {
      case ErrorCode::kCompileFailed:
        // Hard: the key's source does not compile. Retrying locally would
        // fail identically; waiters must see the compile error.
        throw CompileError("(via kspecd) " + err.message);
      case ErrorCode::kExpired:
        *expired = true;
        return nullptr;
      case ErrorCode::kThrottled:
      case ErrorCode::kShuttingDown: {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++remote_stats_.remote_throttled;
        return nullptr;
      }
      default: {
        KSPEC_LOG_WARN << "netd: daemon error (" << ErrorCodeName(err.code)
                       << "): " << err.message;
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++remote_stats_.rpc_errors;
        return nullptr;
      }
    }
  }
  if (resp.type != FrameType::kArtifactResp) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++remote_stats_.rpc_errors;
    return nullptr;
  }

  // The artifact is self-validating; verify it is for *our* key before it can
  // enter this process's cache.
  try {
    std::string stored_key;
    auto mod = std::make_shared<const kcc::CompiledModule>(
        kcc::Deserialize(resp.payload, &stored_key));
    if (stored_key != key_text) {
      KSPEC_LOG_WARN << "netd: daemon returned an artifact for a different key ("
                     << key.FileName() << ") — discarding";
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++remote_stats_.rpc_errors;
      return nullptr;
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++remote_stats_.rpc_fetches;
    return mod;
  } catch (const SerializeError& e) {
    KSPEC_LOG_WARN << "netd: daemon returned a malformed artifact (" << e.what()
                   << ") — discarding";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++remote_stats_.rpc_errors;
    return nullptr;
  }
}

std::shared_ptr<vcuda::Module> RemoteCompileService::ExecuteFlight(
    vcuda::Context& ctx, const vcuda::CompileRequest& req) {
  // Memory-cache hit: nothing to fetch.
  if (ctx.HasCachedModule(req.source, req.opts)) {
    return ctx.LoadModule(req.source, req.opts);
  }

  const kcc::ModuleCacheKey key =
      kcc::ModuleCacheKey::Make(req.source, req.opts, ctx.device().name);

  // Fast path: the shared store, no RPC.
  if (store_) {
    if (auto mod = store_->Load(key)) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++remote_stats_.store_hits;
      }
      return ctx.AdoptCompiledModule(key, std::move(mod));
    }
  }

  // RPC path.
  if (!options_.socket_path.empty()) {
    std::uint32_t deadline_ms = 0;
    if (req.HasDeadline()) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          req.deadline - std::chrono::steady_clock::now());
      // Already past: the daemon would only tell us "expired"; do it here.
      if (left.count() <= 0) return nullptr;
      deadline_ms = static_cast<std::uint32_t>(left.count());
    }
    bool expired = false;
    if (auto mod = FetchFromDaemon(key, key.CanonicalText(), deadline_ms, &expired)) {
      return ctx.AdoptCompiledModule(key, std::move(mod));
    }
    if (expired) return nullptr;  // same contract as the local executor
  }

  // Soft remote failure (or no daemon configured).
  if (!options_.fallback_local) {
    throw Error("netd: specialization daemon unavailable for " + key.FileName() +
                " and local fallback is disabled");
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++remote_stats_.local_fallbacks;
  }
  auto module = ctx.LoadModule(req.source, req.opts);
  // Best-effort publish so the fleet still converges on one compile per key
  // even while the daemon is down.
  if (store_ && module && !store_->Contains(key)) store_->Publish(key, module->compiled());
  return module;
}

}  // namespace kspec::netd
