// Content-addressed shared artifact store.
//
// One directory holding the compiled specializations of every process on the
// machine: file name = hash of the canonical ModuleCacheKey ("k%016llx.kmod",
// the exact layout Context::set_cache_dir uses, so a plain Context pointed at
// the store directory gets the same artifacts with zero glue), contents = the
// self-validating kcc::Serialize envelope. Publishing goes through
// WriteFileAtomic (unique temp + fsync + rename), so concurrent publishers of
// the same key are safe — the last complete rename wins and readers only ever
// observe whole artifacts. Corrupt entries (torn writes from crashed
// publishers, checksum mismatches, format-version bumps) are quarantined:
// renamed aside so the next publish replaces them, never served, never fatal.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "kcc/cache_key.hpp"
#include "kcc/compiler.hpp"

namespace kspec::netd {

struct StoreStats {
  std::uint64_t hits = 0;        // validated artifact served
  std::uint64_t misses = 0;      // no artifact for the key
  std::uint64_t publishes = 0;   // artifacts written
  std::uint64_t corrupt_quarantined = 0;  // unreadable entries renamed aside
  std::uint64_t collisions = 0;  // file present but keyed differently
  // The native-tier (.nso shared object) artifact kind, counted separately so
  // a fleet report can tell module traffic from native-artifact traffic.
  std::uint64_t native_hits = 0;
  std::uint64_t native_misses = 0;
  std::uint64_t native_publishes = 0;
};

class ArtifactStore {
 public:
  // Creates `dir` if absent; throws kspec::Error if that fails.
  explicit ArtifactStore(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string PathFor(const kcc::ModuleCacheKey& key) const;

  // Validated artifact bytes for `key` into *out. False on miss — including
  // corrupt entries (quarantined, counted) and hash-colliding entries (left
  // in place for their own key... which is this file name, so the next
  // publish of `key` overwrites them; counted).
  bool LoadBytes(const kcc::ModuleCacheKey& key, std::vector<std::uint8_t>* out);

  // LoadBytes + deserialize; nullptr on miss.
  std::shared_ptr<const kcc::CompiledModule> Load(const kcc::ModuleCacheKey& key);

  // Serializes and publishes atomically. False on I/O failure (the store is
  // best-effort: callers continue without persistence).
  bool Publish(const kcc::ModuleCacheKey& key, const kcc::CompiledModule& mod);

  // Publishes pre-serialized artifact bytes after validating that they are a
  // well-formed envelope embedding exactly `key` (a daemon response is
  // re-verified before it can poison the shared store). False on validation
  // or I/O failure.
  bool PublishBytes(const kcc::ModuleCacheKey& key, std::span<const std::uint8_t> bytes);

  // Cheap existence probe (no validation, no stats).
  bool Contains(const kcc::ModuleCacheKey& key) const;

  // ---- native-tier artifacts (.nso) ----
  // Same directory, same hash-derived stem, `.nso` extension: the envelope is
  // kcc::SerializeNative (a host shared object instead of a module), with the
  // identical corrupt-quarantine / collision policy as the .kmod methods.
  std::string PathForNative(const kcc::ModuleCacheKey& key) const;
  bool LoadNativeBytes(const kcc::ModuleCacheKey& key, std::vector<std::uint8_t>* out);
  bool PublishNativeBytes(const kcc::ModuleCacheKey& key, std::span<const std::uint8_t> bytes);
  bool ContainsNative(const kcc::ModuleCacheKey& key) const;

  // ---- named native artifacts (shape-specialized variants) ----
  // Same envelope, validation, and quarantine policy, but the caller names
  // the file (e.g. "k<hash>_s<hash>.nso") and supplies the expected embedded
  // key text (module canonical text + "\n" + shape canonical text), because
  // the artifact identity is wider than one ModuleCacheKey.
  bool LoadNativeBytesNamed(const std::string& file_name, const std::string& key_text,
                            std::vector<std::uint8_t>* out);
  bool PublishNativeBytesNamed(const std::string& file_name, const std::string& key_text,
                               std::span<const std::uint8_t> bytes);
  bool ContainsNativeNamed(const std::string& file_name) const;

  StoreStats stats() const;

 private:
  bool LoadNativeAt(const std::string& path, const std::string& key_text,
                    std::vector<std::uint8_t>* out);
  bool PublishNativeAt(const std::string& path, const std::string& key_text,
                       std::span<const std::uint8_t> bytes);
  // Renames a bad entry aside so it is never read again and the next publish
  // lands cleanly. Best-effort; falls back to unlink.
  void Quarantine(const std::string& path);

  std::string dir_;
  mutable std::mutex mu_;  // guards stats_
  StoreStats stats_;
};

}  // namespace kspec::netd
