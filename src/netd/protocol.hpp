// Wire protocol of the specialization daemon (kspecd).
//
// The daemon answers one question — "give me the compiled artifact for this
// specialization key" — so the protocol is deliberately small: length-prefixed
// frames over a local AF_UNIX stream socket. A compile request carries the
// canonical serialized ModuleCacheKey (the same injective encoding the cache
// verifies against, so the daemon compiles *exactly* what the client would
// have); the success response is the raw self-validating .kmod artifact
// (kcc::Serialize envelope — magic, version, checksum), which the client
// verifies with the very same Deserialize path it uses for its disk cache.
//
// Frame layout (all integers little-endian):
//   [0..3]   u32 magic "KSPN"
//   [4]      u8 protocol version (kProtocolVersion)
//   [5]      u8 frame type (FrameType)
//   [6..7]   u16 reserved, must be 0
//   [8..15]  u64 payload byte count (<= kMaxFramePayload)
//   [16..]   payload
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace kspec::netd {

inline constexpr std::uint32_t kFrameMagic = 0x4E50534B;  // "KSPN" little-endian
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
// Artifacts are small (kilobytes); anything near this cap is a corrupt or
// hostile frame, not a real request.
inline constexpr std::uint64_t kMaxFramePayload = 64ull << 20;

enum class FrameType : std::uint8_t {
  kCompileReq = 1,    // CompileReq payload -> kArtifactResp | kErrorResp
  kArtifactResp = 2,  // raw .kmod artifact bytes
  kErrorResp = 3,     // ErrorBody payload
  kStatsReq = 4,      // empty -> kStatsResp
  kStatsResp = 5,     // JSON text
  kShutdownReq = 6,   // empty -> kOkResp, then the daemon stops
  kOkResp = 7,        // empty acknowledgement
  kPing = 8,          // empty -> kOkResp
};

// Typed failure the daemon reports instead of an artifact. The client decides
// which are soft (fall back to a local compile) and which are hard.
enum class ErrorCode : std::uint8_t {
  kCompileFailed = 1,  // the key's source does not compile; hard, rethrown
  kThrottled = 2,      // per-tenant quota or queue full; soft
  kBadRequest = 3,     // malformed key / unknown device; hard
  kShuttingDown = 4,   // daemon is stopping; soft
  kInternal = 5,       // daemon-side invariant failure; soft
  kExpired = 6,        // the request's deadline passed while queued
};

const char* ErrorCodeName(ErrorCode code);

struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<std::uint8_t> payload;
};

// Compile request body.
struct CompileReq {
  std::string tenant;    // admission-control identity ("" = anonymous)
  std::string key_text;  // kcc::ModuleCacheKey::CanonicalText()
  std::uint32_t deadline_ms = 0;  // 0 = no deadline
};

// Error response body.
struct ErrorBody {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

std::vector<std::uint8_t> EncodeCompileReq(const CompileReq& req);
// Throws SerializeError on malformed payload.
CompileReq DecodeCompileReq(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> EncodeError(const ErrorBody& err);
// Throws SerializeError on malformed payload.
ErrorBody DecodeError(std::span<const std::uint8_t> payload);

// Writes one frame to `fd`, restarting on EINTR. False on any I/O failure
// (notably EPIPE when the peer vanished).
bool SendFrame(int fd, FrameType type, std::span<const std::uint8_t> payload);
bool SendFrame(int fd, FrameType type, const std::string& payload);

enum class RecvStatus {
  kOk,
  kClosed,     // clean EOF before any header byte, or peer reset
  kMalformed,  // bad magic/version/reserved bits, or truncated mid-frame
  kTooLarge,   // payload length beyond kMaxFramePayload
};

// Reads one frame. Blocks (subject to any SO_RCVTIMEO on the fd — a receive
// timeout surfaces as kClosed).
RecvStatus RecvFrame(int fd, Frame* out);

// AF_UNIX stream helpers. Both return -1 with errno set on failure.
// ListenUnix unlinks a stale socket file at `path` first.
int ListenUnix(const std::string& path, int backlog = 64);
int ConnectUnix(const std::string& path);

// Sets a receive timeout on the socket so a hung daemon cannot wedge a client
// worker forever. Zero clears the timeout.
bool SetRecvTimeout(int fd, std::chrono::milliseconds timeout);

}  // namespace kspec::netd
