// The C ABI between the host engine and a dlopen'd native-tier shared object.
//
// A generated translation unit (codegen.cpp) embeds a textual copy of these
// structs — the SO must stay loadable by toolchains that never saw this
// header. Any layout or semantic change here MUST bump kNativeAbiVersion; the
// engine refuses (and rebuilds) artifacts whose kspec_native_abi_version()
// disagrees, so stale shared objects degrade to the decoded tier instead of
// corrupting memory.
//
// Device cost constants travel in the launch struct at run time rather than
// being baked into the generated code: a ModuleCacheKey names only the device
// *profile* (by name), but tests tweak individual DeviceProfile fields — a
// baked constant would silently diverge from the interpreter's charges.
#pragma once

#include <cstdint>

namespace kspec::native {

// Version 2: ALU-family prelude helpers take the active mask by value and
// shape-specialized variants exist (KSPEC_SHAPE). The host-facing structs are
// unchanged, but emitted TUs and cached artifacts from version 1 predate the
// shape-variant dispatch contract, so they are invalidated wholesale.
inline constexpr int kNativeAbiVersion = 2;

// Mirrors vgpu::BlockStats field-for-field; the engine copies it across.
struct KspecNativeStats {
  std::uint64_t warp_instrs = 0;
  std::uint64_t lane_instrs = 0;
  std::uint64_t global_instrs = 0;
  std::uint64_t mem_transactions = 0;
  std::uint64_t texture_fetches = 0;
  std::uint64_t shared_conflict_cycles = 0;
  std::uint64_t barriers = 0;
  double issue_cycles = 0;
  double memory_cycles = 0;
  double ilp_sum = 0;
};

struct KspecNativeTexture {
  std::uint64_t base = 0;
  int w = 0, h = 1;
};

// Diagnostic codes raised by generated code through KspecNativeCallbacks::fail.
// The host formats the exact interpreter error text (it has the kernel and
// launch context; the SO only reports what went wrong where).
enum KspecNativeFail : int {
  kFailSharedOob = 0,       // a = addr, b = access bytes
  kFailConstOob,            // a = addr, b = access bytes
  kFailConstStore,          //
  kFailBadSpace,            //
  kFailMisalignedAtomic,    // a = element size, b = addr
  kFailTexUnbound,          // a = slot
  kFailTexInvalid,          // a = slot
  kFailDivergentBarrier,    //
  kFailWatchdog,            //
  kFailBarrierDeadlock,     //
  kFailNoProgress,          //
  kFailBadOp,               // a = pc (invalid opcode/type pair reached exec)
  kFailBadDispatch,         // a = pc (branch to a non-leader pc: codegen bug)
  kFailBadAtomic,           //
  kFailNoReconv,            // a = pc (divergent branch without reconvergence)
};

struct KspecNativeCallbacks {
  // Opaque vgpu::GlobalMemory*. try_access returns nullptr when the range is
  // not inside one live allocation; access throws the interpreter's precise
  // DeviceError host-side (the exception unwinds through the SO's frames).
  void* gmem = nullptr;
  const unsigned char* (*try_access)(void* gmem, std::uint64_t addr, std::uint64_t len) = nullptr;
  unsigned char* (*access)(void* gmem, std::uint64_t addr, std::uint64_t len) = nullptr;
  // Throws host-side; never returns.
  void* fail_ctx = nullptr;
  void (*fail)(void* fail_ctx, int code, std::uint64_t a, std::uint64_t b) = nullptr;
};

struct KspecNativeLaunch {
  // Device cost constants (see file comment for why they are runtime values).
  int is_fermi = 0;
  unsigned warp_size = 32;
  unsigned shared_mem_banks = 16;
  double cycles_per_global_tx = 36.0;
  double shared_access_cost = 1.0;
  std::uint64_t watchdog_warp_instrs = 0;

  unsigned grid_x = 1, grid_y = 1, grid_z = 1;
  unsigned block_x = 1, block_y = 1, block_z = 1;

  const std::uint64_t* args = nullptr;
  std::uint64_t nargs = 0;
  const unsigned char* cmem = nullptr;
  std::uint64_t cmem_bytes = 0;
  const KspecNativeTexture* textures = nullptr;
  std::uint64_t ntextures = 0;

  // Per-slot thread coordinates, stride entries, precomputed by the host with
  // the interpreter's exact formula (padding lanes clamp to the last thread).
  const std::uint32_t* tid_x = nullptr;
  const std::uint32_t* tid_y = nullptr;
  const std::uint32_t* tid_z = nullptr;

  KspecNativeCallbacks cb;
};

struct KspecNativeBlock {
  unsigned ctaid_x = 0, ctaid_y = 0, ctaid_z = 0;
  std::uint64_t* regs = nullptr;  // num_vregs x stride SoA register file
  unsigned char* shared = nullptr;
  std::uint64_t shared_bytes = 0;
  KspecNativeStats* stats = nullptr;   // accumulated, never reset by the SO
  std::uint64_t* wd_accum = nullptr;   // per-runner watchdog accumulator
};

// Entry points every generated shared object exports with default visibility:
//   int         kspec_native_abi_version(void);
//   const char* kspec_native_build_key(void);      // ModuleCacheKey canonical text
//   unsigned long long kspec_native_build_key_size(void);  // bytes in build_key
//   unsigned    kspec_native_kernel_count(void);
//   const char* kspec_native_kernel_name(unsigned index);
//   void        kspec_native_run_block(unsigned index, const KspecNativeLaunch*,
//                                      KspecNativeBlock*);
// The canonical key text is binary (length-prefixed fields, embedded NULs), so
// build_key is NOT a C string — always pair it with build_key_size.
using AbiVersionFn = int (*)();
using BuildKeyFn = const char* (*)();
using BuildKeySizeFn = unsigned long long (*)();
using KernelCountFn = unsigned (*)();
using KernelNameFn = const char* (*)(unsigned);
using RunBlockFn = void (*)(unsigned, const KspecNativeLaunch*, KspecNativeBlock*);

}  // namespace kspec::native
