#include "native/build_executor.hpp"

#include "kcc/cache_key.hpp"

namespace kspec::native {

NativeBuildExecutor::NativeBuildExecutor(NativeEngine* engine, serve::ExecutorOptions options)
    : serve::CompileExecutor(options), engine_(engine) {}

NativeBuildExecutor::~NativeBuildExecutor() {
  // Workers must stop before our ExecuteFlight override is torn down.
  Shutdown();
}

std::shared_ptr<vcuda::Module> NativeBuildExecutor::ExecuteFlight(
    vcuda::Context& ctx, const vcuda::CompileRequest& req) {
  std::shared_ptr<vcuda::Module> module = serve::CompileExecutor::ExecuteFlight(ctx, req);
  if (module && engine_ != nullptr) {
    const kcc::ModuleCacheKey key =
        kcc::ModuleCacheKey::Make(req.source, req.opts, ctx.device().name);
    // Best-effort: a failed or unavailable native build leaves the flight
    // successful — the decoded tier keeps serving.
    engine_->EnsureReady(key, module->compiled());
  }
  return module;
}

}  // namespace kspec::native
