// Mask-constant propagation over the decoded CFG for shape-specialized
// native codegen.
//
// Given a kernel and a ShapeSpec (block + grid dimensions fixed at launch
// time), this pass runs a forward abstract interpretation that tracks, per
// virtual register and per active lane:
//
//   * constants  — the exact 64-bit cell value (folded with the interpreter's
//                  own ALU semantics, so a proof here is a proof about what
//                  the generic code would compute);
//   * uniformity — "every active lane holds the same value" (parameters are
//                  broadcast, ctaid/warp-id are per-warp constants, and any
//                  op over uniform inputs is uniform);
//   * ranges     — an interval [lo, hi] restricted to [0, INT32_MAX] so the
//                  untyped register cell reads the same under every typed
//                  view (tid_x in [0, ntid_x-1] with ntid_x shape-known is
//                  the seed that makes `if (tid < n)` guards provable).
//
// The outputs drive divergence-aware emission:
//
//   * each `bra.pred` is classified: provably taken / provably not taken
//     (the branch folds away), uniform (a single-lane test replaces the
//     32-lane predicate scan — no reconvergence push needed, because the
//     generic path's taken==mask / taken==0 cases would not push either), or
//     divergent (keep the generic scan);
//   * with `assume_full_entry`, blocks whose entry mask is provably the full
//     warp are flagged, so lane loops there run straight-line 0..31 and the
//     lane-count charge `popcount(mask)` becomes the compile-time constant 32.
//
// Soundness notes (the interesting bits):
//   * Uniform-joins (any join that is not a divergent reconvergence point)
//     keep uniformity: the warp arrives over exactly one predecessor at a
//     time, so "uniform over the active lanes" survives the merge.
//   * Divergent reconvergence points merge lanes with different histories:
//     every register written anywhere inside the divergent region loses its
//     constant/uniform facts there (ranges survive — they are per-lane
//     properties and every lane's exit value is covered by the fixpoint
//     union of the region's states).
//   * A reconvergence point re-enters with the pushed (branch-point) mask
//     only if no exit could have retired lanes while the mask was not
//     provably full; the analysis restarts with restores disabled when it
//     sees such an exit.
//
// The pass never assumes anything the interpreter does not guarantee: every
// constant is folded with bit-exact interpreter semantics and every
// classification degrades to the generic per-lane scan when unproven, so the
// emitted code's LaunchStats stay bit-identical to the interpreter.
#pragma once

#include <cstdint>
#include <vector>

#include "vgpu/module.hpp"

namespace kspec::native {

struct ShapeSpec;

enum class BranchKind : std::uint8_t {
  kScan = 0,     // generic per-lane predicate scan + reconvergence push
  kUniform,      // predicate uniform over active lanes: single-lane test
  kAlwaysTaken,  // provably taken for every active lane: unconditional jump
  kNeverTaken,   // provably not taken for any active lane: falls through
};

struct MaskFacts {
  // Indexed by pc; meaningful only at kBraPred instructions.
  std::vector<BranchKind> branch;
  // Indexed by pc; true at a basic-block leader whose entry mask is provably
  // the full warp. Only ever set when assume_full_entry was true.
  std::vector<char> full_at;
  // Emission/report summary.
  unsigned folded_branches = 0;
  unsigned uniform_branches = 0;
  unsigned full_blocks = 0;
};

// Analyzes `ker` under launch shape `shape`. `assume_full_entry` is true for
// the full-warp variant body (every lane active on entry) and false for the
// boundary-warp body (entry mask unknown; branch facts still apply because
// constants, ranges and uniformity are mask-independent).
MaskFacts AnalyzeKernelMasks(const vgpu::CompiledKernel& ker, const ShapeSpec& shape,
                             bool assume_full_entry);

}  // namespace kspec::native
