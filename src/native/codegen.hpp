// MiniPTX -> C++ code generation for the native execution tier.
//
// EmitModuleSource walks every kernel of a decoded module and emits one
// standalone C++20 translation unit (standard headers only) that the host
// toolchain compiles into a shared object:
//
//   * the SoA register file and warp lanes become plain inner loops the host
//     compiler can unroll and autovectorize;
//   * the per-pc reconvergence machinery is lowered to structured control
//     flow: a `dispatch` label plus one switch over basic-block leaders, each
//     block a straight-line run of specialized statements;
//   * cost-model charges are hoisted per basic block — the per-instruction
//     issue-cost and ILP sums are folded into per-block constants at emit
//     time (exact: every charge is a dyadic rational), so LaunchStats stay
//     bit-identical to the interpreter;
//   * each instruction is emitted against function templates in the generated
//     prelude that transliterate the interpreter's handlers, specialized on
//     (opcode, type, operand kinds) so immediates constant-fold.
//
// The emitted unit embeds the ModuleCacheKey canonical text (served back via
// kspec_native_build_key) so a loaded artifact can be verified against the
// key that names it.
//
// With a ShapeSpec the unit is shape-specialized: launch dimensions become
// compile-time constants, each kernel gets a full-warp body (driven by the
// mask-constant-propagation pass in maskprop.hpp) plus a boundary-warp body,
// and the exported run_block refuses launches whose shape does not match.
#pragma once

#include <string>

#include "kcc/compiler.hpp"
#include "native/shape.hpp"

namespace kspec::native {

// Full translation-unit text for `mod`, tagged with the key's canonical text.
// Pass `shape` to emit a shape-specialized variant (see file comment).
std::string EmitModuleSource(const kcc::CompiledModule& mod,
                             const std::string& key_canonical_text,
                             const ShapeSpec* shape = nullptr);

}  // namespace kspec::native
