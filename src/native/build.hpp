// Host-toolchain discovery and shared-object compilation for the native tier.
//
// The native backend is only as available as the host's C++ compiler. The
// probe order is:
//
//   1. KSPEC_NATIVE_CXX — authoritative when set: a usable value selects that
//      compiler, an unusable one disables the tier outright (tests point it
//      at /nonexistent to simulate hosts without a toolchain);
//   2. the compiler that built this binary (cmake bakes its path in as
//      KSPEC_HOST_CXX);
//   3. `c++`, `g++`, `clang++` on PATH.
//
// Discovery runs once per process. Compilation is deliberately boring: write
// the translation unit into a scratch ScopedTempDir, invoke the compiler with
// a fixed flag set, read the shared object back as bytes. No fast-math — the
// generated code must stay bit-identical to the interpreter, and the
// transcendentals resolve to the same libm either way.
#pragma once

#include <string>
#include <vector>

namespace kspec::native {

// The discovered host compiler (a path or a command name), or "" when the
// native tier is unavailable on this host. Probed once, then cached.
const std::string& HostCompiler();

inline bool ToolchainAvailable() { return !HostCompiler().empty(); }

// Compiles `source` (a full C++20 translation unit) into a shared object and
// returns its bytes. On failure returns empty and, when `error` is non-null,
// fills it with the compiler's diagnostics (or the failing step).
std::vector<std::uint8_t> CompileSharedObject(const std::string& source, std::string* error);

}  // namespace kspec::native
