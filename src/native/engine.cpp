#include "native/engine.hpp"

#include <dlfcn.h>

#include <condition_variable>
#include <filesystem>
#include <vector>

#include "kcc/serialize.hpp"
#include "native/build.hpp"
#include "native/codegen.hpp"
#include "netd/artifact_store.hpp"
#include "support/math.hpp"
#include "support/serialize.hpp"
#include "support/status.hpp"
#include "support/str.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/exec_pool.hpp"
#include "vgpu/isa.hpp"
#include "vgpu/tier.hpp"

namespace kspec::native {
namespace {

namespace fs = std::filesystem;
using vgpu::Opcode;
using vgpu::Space;

// Renames a bad artifact aside so it is never read again and the next publish
// lands cleanly. Best-effort; falls back to unlink.
void QuarantineFile(const std::string& path) {
  std::error_code ec;
  fs::rename(path, path + ".bad", ec);
  if (ec) fs::remove(path, ec);
}

bool IsGlobalAtomic(const vgpu::Instr& i) {
  switch (i.op) {
    case Opcode::kAtomAdd:
    case Opcode::kAtomMin:
    case Opcode::kAtomMax:
    case Opcode::kAtomExch:
    case Opcode::kAtomCas:
      return i.space == Space::kGlobal;
    default:
      return false;
  }
}

// ---- launch callbacks (the SO's only way back into the host) ----

const unsigned char* TryAccessCb(void* gmem, std::uint64_t addr, std::uint64_t len) {
  return static_cast<const vgpu::GlobalMemory*>(gmem)->TryAccess(addr, len);
}

unsigned char* AccessCb(void* gmem, std::uint64_t addr, std::uint64_t len) {
  return static_cast<vgpu::GlobalMemory*>(gmem)->Access(addr, len);
}

// Context for formatting the interpreter's exact error text host-side: the
// SO reports (code, a, b); the host owns the kernel and launch geometry.
struct FailCtx {
  const vgpu::CompiledKernel* kernel = nullptr;
  std::size_t shared_size = 0;
  std::size_t const_size = 0;
};

[[noreturn]] void FailCb(void* ctx, int code, std::uint64_t a, std::uint64_t b) {
  const FailCtx& fc = *static_cast<const FailCtx*>(ctx);
  switch (static_cast<KspecNativeFail>(code)) {
    case kFailSharedOob:
      throw DeviceError(Format("shared-memory access out of bounds: 0x%llx (+%zu) of %zu bytes",
                               static_cast<unsigned long long>(a),
                               static_cast<std::size_t>(b), fc.shared_size));
    case kFailConstOob:
      throw DeviceError(Format("constant-memory access out of bounds: 0x%llx of %zu bytes",
                               static_cast<unsigned long long>(a), fc.const_size));
    case kFailConstStore:
      throw DeviceError("store to constant memory");
    case kFailBadSpace:
      throw DeviceError("unsupported memory space in ld/st");
    case kFailMisalignedAtomic:
      throw DeviceError(Format("misaligned %zu-byte atomic at 0x%llx",
                               static_cast<std::size_t>(a),
                               static_cast<unsigned long long>(b)));
    case kFailTexUnbound:
      throw DeviceError(Format("texture slot %d is not bound at launch",
                               static_cast<int>(static_cast<std::int64_t>(a))));
    case kFailTexInvalid:
      throw DeviceError(Format("texture slot %d has an invalid binding",
                               static_cast<int>(static_cast<std::int64_t>(a))));
    case kFailDivergentBarrier:
      throw DeviceError("__syncthreads() executed in divergent control flow");
    case kFailWatchdog:
      throw DeviceError(
          "kernel exceeded the simulator watchdog limit (likely a non-terminating loop); raise "
          "DeviceProfile::watchdog_warp_instrs if the workload is legitimately huge");
    case kFailBarrierDeadlock:
      throw DeviceError("__syncthreads deadlock: a warp retired or diverged past the barrier");
    case kFailNoProgress:
      throw DeviceError("block made no progress (scheduler deadlock)");
    case kFailBadOp: {
      // a = pc of the invalid (opcode, type) pair; mirror BlockRunner::BadOp.
      const vgpu::Instr& i = fc.kernel->code[static_cast<std::size_t>(a)];
      if (i.type == vgpu::Type::kF32) {
        throw InternalError(Format("op %s invalid for f32", vgpu::OpcodeName(i.op)));
      }
      if (i.type == vgpu::Type::kF64) {
        throw InternalError(Format("op %s invalid for f64", vgpu::OpcodeName(i.op)));
      }
      throw InternalError(Format("unhandled opcode %s for type %s", vgpu::OpcodeName(i.op),
                                 vgpu::TypeName(i.type)));
    }
    case kFailBadDispatch:
      throw InternalError(Format("native tier: branch to non-leader pc %llu",
                                 static_cast<unsigned long long>(a)));
    case kFailBadAtomic:
      throw InternalError("bad atomic opcode");
    case kFailNoReconv:
      throw InternalError("divergent branch without reconvergence point");
  }
  throw InternalError(Format("native tier: unknown failure code %d", code));
}

}  // namespace

struct NativeEngine::LoadedModule {
  // Generic TUs are never dlclosed once any kernel ran: they hold
  // thread_local state whose destructors would run after the handle is gone.
  // Shape-variant TUs are emitted without thread_local state precisely so
  // closeable can be true and LRU eviction can really unload them.
  void* handle = nullptr;
  bool closeable = false;
  RunBlockFn run_block = nullptr;
  std::map<std::string, unsigned> kernels;  // name -> export index

  ~LoadedModule() {
    if (handle != nullptr && closeable) ::dlclose(handle);
  }
};

struct NativeEngine::VariantSlot {
  enum State {
    kUnknown,   // never probed (or evicted; the disk artifact may remain)
    kMissing,   // probed load-only: nothing servable, a build may fix it
    kBuilding,  // one thread (eager launch or promoter) owns the ladder
    kReady,
    kFailed,    // build failed; sticky for the life of the process
  } state = kUnknown;
  std::shared_ptr<LoadedModule> loaded;
  std::uint64_t heat = 0;       // launches observed for this (module, shape)
  std::uint64_t last_used = 0;  // LRU tick of the last serve
  bool promote_queued = false;  // a background promotion is queued/running
};

struct NativeEngine::Entry {
  std::mutex mu;
  std::condition_variable cv;
  enum State {
    kUnknown,   // never probed
    kMissing,   // probed (load-only): nothing servable yet, a build may fix it
    kBuilding,  // one thread is loading/building; others wait (or degrade)
    kReady,
    kFailed,    // build failed; sticky for the life of the process
  } state = kUnknown;
  std::shared_ptr<LoadedModule> loaded;
  // Shape-specialized variants by shape canonical text, bounded by
  // Options::max_shape_variants. Guarded by mu like everything else here.
  std::map<std::string, VariantSlot> variants;
};

struct NativeEngine::PromoteJob {
  std::shared_ptr<Entry> entry;
  kcc::ModuleCacheKey key;
  std::shared_ptr<const kcc::CompiledModule> mod;
  ShapeSpec shape;
  std::string shape_text;
};

NativeEngine::NativeEngine() : NativeEngine(Options{}) {}

NativeEngine::NativeEngine(Options opts)
    : opts_(std::move(opts)), scratch_("kspec-native-so") {}

NativeEngine::~NativeEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    promo_shutdown_ = true;
  }
  promo_cv_.notify_all();
  if (promoter_.joinable()) promoter_.join();
}

std::string NativeEngine::ArtifactFileName(const kcc::ModuleCacheKey& key) {
  return Format("k%016llx.nso", static_cast<unsigned long long>(key.Hash()));
}

std::string NativeEngine::VariantFileName(const kcc::ModuleCacheKey& key,
                                          const ShapeSpec& shape) {
  return Format("k%016llx_s%016llx.nso", static_cast<unsigned long long>(key.Hash()),
                static_cast<unsigned long long>(shape.Hash()));
}

std::string NativeEngine::VariantKeyText(const kcc::ModuleCacheKey& key,
                                         const ShapeSpec& shape) {
  // The module canonical text is length-prefixed binary, so appending a
  // suffix cannot collide with any other module's bare text — and no generic
  // artifact ever embeds a text with this suffix.
  return key.CanonicalText() + "\n" + shape.CanonicalText();
}

NativeEngineStats NativeEngine::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

bool NativeEngine::IsReady(const kcc::ModuleCacheKey& key) const {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(key.CanonicalText());
    if (it == entries_.end()) return false;
    entry = it->second;
  }
  std::lock_guard<std::mutex> lk(entry->mu);
  return entry->state == Entry::kReady;
}

bool NativeEngine::EnsureReady(const kcc::ModuleCacheKey& key, const kcc::CompiledModule& mod) {
  return Resolve(key, &mod, /*may_build=*/true) != nullptr;
}

std::shared_ptr<NativeEngine::LoadedModule> NativeEngine::Resolve(const kcc::ModuleCacheKey& key,
                                                                  const kcc::CompiledModule* mod,
                                                                  bool may_build) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lk(mu_);
    std::shared_ptr<Entry>& slot = entries_[key.CanonicalText()];
    if (!slot) slot = std::make_shared<Entry>();
    entry = slot;
  }
  std::unique_lock<std::mutex> lk(entry->mu);
  for (;;) {
    switch (entry->state) {
      case Entry::kReady:
        return entry->loaded;
      case Entry::kFailed:
        return nullptr;
      case Entry::kMissing:
        // A load-only probe already came up empty; only a build changes that.
        if (!may_build) return nullptr;
        break;
      case Entry::kBuilding:
        // kAuto launches never wait on a build; forced ones do.
        if (!may_build) return nullptr;
        entry->cv.wait(lk);
        continue;
      case Entry::kUnknown:
        break;
    }
    break;
  }
  entry->state = Entry::kBuilding;
  lk.unlock();

  std::shared_ptr<LoadedModule> lm;
  try {
    lm = LoadOrBuild(key, mod, may_build);
  } catch (...) {
    lm = nullptr;
  }

  lk.lock();
  if (lm) {
    entry->loaded = lm;
    entry->state = Entry::kReady;
  } else {
    // A failed *build* is sticky; a fruitless load-only probe is retriable
    // once somebody may build.
    entry->state = may_build ? Entry::kFailed : Entry::kMissing;
  }
  entry->cv.notify_all();
  return lm;
}

std::shared_ptr<NativeEngine::LoadedModule> NativeEngine::TryLoadEnvelope(
    const std::vector<std::uint8_t>& envelope, const std::string& expect_key_text,
    const std::string& quarantine_path, bool closeable) {
  std::string key_text;
  std::vector<std::uint8_t> so_bytes;
  try {
    so_bytes = kcc::DeserializeNative(envelope, &key_text);
  } catch (const SerializeError&) {
    if (!quarantine_path.empty()) QuarantineFile(quarantine_path);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.corrupt_quarantined;
    return nullptr;
  }
  if (key_text != expect_key_text) {
    // Hash collision: the artifact belongs to a different key. Leave it in
    // place for its own key; this launch degrades.
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.stale_discarded;
    return nullptr;
  }
  return OpenSharedObject(so_bytes, expect_key_text, quarantine_path, closeable);
}

std::shared_ptr<NativeEngine::LoadedModule> NativeEngine::OpenSharedObject(
    const std::vector<std::uint8_t>& so_bytes, const std::string& expect_key_text,
    const std::string& origin, bool closeable) {
  std::string path;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!scratch_.valid()) return nullptr;
    path = scratch_.File(Format("so_%llu.so",
                                static_cast<unsigned long long>(scratch_seq_++)));
  }
  if (!WriteFileAtomic(path, so_bytes)) return nullptr;
  void* handle = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) return nullptr;

  auto abi = reinterpret_cast<AbiVersionFn>(::dlsym(handle, "kspec_native_abi_version"));
  auto build_key = reinterpret_cast<BuildKeyFn>(::dlsym(handle, "kspec_native_build_key"));
  auto build_key_size =
      reinterpret_cast<BuildKeySizeFn>(::dlsym(handle, "kspec_native_build_key_size"));
  auto count = reinterpret_cast<KernelCountFn>(::dlsym(handle, "kspec_native_kernel_count"));
  auto name = reinterpret_cast<KernelNameFn>(::dlsym(handle, "kspec_native_kernel_name"));
  auto run = reinterpret_cast<RunBlockFn>(::dlsym(handle, "kspec_native_run_block"));
  // The embedded key is binary (the canonical text has NULs) — compare by
  // (pointer, size), never strlen.
  if (!abi || !build_key || !build_key_size || !count || !name || !run ||
      abi() != kNativeAbiVersion ||
      expect_key_text !=
          std::string_view(build_key(), static_cast<std::size_t>(build_key_size()))) {
    // Stale or foreign SO (older codegen, bumped ABI). Nothing stateful ran
    // yet, so dlclose is safe here even for a non-closeable module. An
    // on-disk original is quarantined so the rebuild replaces it.
    ::dlclose(handle);
    if (!origin.empty()) QuarantineFile(origin);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.stale_discarded;
    return nullptr;
  }

  auto lm = std::make_shared<LoadedModule>();
  lm->handle = handle;
  lm->closeable = closeable;
  lm->run_block = run;
  const unsigned n = count();
  for (unsigned i = 0; i < n; ++i) lm->kernels[name(i)] = i;
  return lm;
}

std::shared_ptr<NativeEngine::LoadedModule> NativeEngine::LoadOrBuild(
    const kcc::ModuleCacheKey& key, const kcc::CompiledModule* mod, bool may_build) {
  // 1. Disk tier.
  std::string disk_path;
  if (!opts_.cache_dir.empty()) {
    disk_path = (fs::path(opts_.cache_dir) / ArtifactFileName(key)).string();
    std::vector<std::uint8_t> envelope;
    if (ReadFileBytes(disk_path, &envelope)) {
      if (auto lm = TryLoadEnvelope(envelope, key.CanonicalText(), disk_path,
                                    /*closeable=*/false)) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.disk_hits;
        return lm;
      }
    }
  }

  // 2. Shared store tier (write through to the disk tier on a hit).
  if (opts_.store) {
    std::vector<std::uint8_t> envelope;
    if (opts_.store->LoadNativeBytes(key, &envelope)) {
      if (auto lm = TryLoadEnvelope(envelope, key.CanonicalText(), /*quarantine_path=*/"",
                                    /*closeable=*/false)) {
        if (!disk_path.empty()) WriteFileAtomic(disk_path, envelope);
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.store_hits;
        return lm;
      }
    }
  }

  // 3. Build.
  if (!may_build || mod == nullptr || !ToolchainAvailable()) return nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.builds_started;
  }
  const std::string source = EmitModuleSource(*mod, key.CanonicalText());
  std::string error;
  const std::vector<std::uint8_t> so_bytes = CompileSharedObject(source, &error);
  if (so_bytes.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.build_failures;
    return nullptr;
  }
  auto lm = OpenSharedObject(so_bytes, key.CanonicalText(), /*origin=*/"",
                             /*closeable=*/false);
  if (!lm) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.build_failures;
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.builds_completed;
  }
  const std::vector<std::uint8_t> envelope = kcc::SerializeNative(so_bytes, key.CanonicalText());
  if (!disk_path.empty()) WriteFileAtomic(disk_path, envelope);
  if (opts_.store) opts_.store->PublishNativeBytes(key, envelope);
  return lm;
}

std::shared_ptr<NativeEngine::LoadedModule> NativeEngine::LoadOrBuildVariant(
    const kcc::ModuleCacheKey& key, const kcc::CompiledModule* mod, const ShapeSpec& shape,
    bool may_build) {
  const std::string key_text = VariantKeyText(key, shape);
  const std::string file_name = VariantFileName(key, shape);

  // 1. Disk tier.
  std::string disk_path;
  if (!opts_.cache_dir.empty()) {
    disk_path = (fs::path(opts_.cache_dir) / file_name).string();
    std::vector<std::uint8_t> envelope;
    if (ReadFileBytes(disk_path, &envelope)) {
      if (auto lm = TryLoadEnvelope(envelope, key_text, disk_path, /*closeable=*/true)) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.shape_disk_hits;
        return lm;
      }
    }
  }

  // 2. Shared store tier (write through to the disk tier on a hit).
  if (opts_.store) {
    std::vector<std::uint8_t> envelope;
    if (opts_.store->LoadNativeBytesNamed(file_name, key_text, &envelope)) {
      if (auto lm = TryLoadEnvelope(envelope, key_text, /*quarantine_path=*/"",
                                    /*closeable=*/true)) {
        if (!disk_path.empty()) WriteFileAtomic(disk_path, envelope);
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.shape_store_hits;
        return lm;
      }
    }
  }

  // 3. Build.
  if (!may_build || mod == nullptr || !ToolchainAvailable()) return nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.shape_builds_started;
  }
  const std::string source = EmitModuleSource(*mod, key_text, &shape);
  std::string error;
  const std::vector<std::uint8_t> so_bytes = CompileSharedObject(source, &error);
  if (so_bytes.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.shape_build_failures;
    return nullptr;
  }
  auto lm = OpenSharedObject(so_bytes, key_text, /*origin=*/"", /*closeable=*/true);
  if (!lm) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.shape_build_failures;
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.shape_builds_completed;
  }
  const std::vector<std::uint8_t> envelope = kcc::SerializeNative(so_bytes, key_text);
  if (!disk_path.empty()) WriteFileAtomic(disk_path, envelope);
  if (opts_.store) opts_.store->PublishNativeBytesNamed(file_name, key_text, envelope);
  return lm;
}

std::shared_ptr<NativeEngine::LoadedModule> NativeEngine::ResolveVariant(
    const kcc::ModuleCacheKey& key, std::shared_ptr<const kcc::CompiledModule> mod,
    const ShapeSpec& shape, vgpu::ShapeMode mode) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lk(mu_);
    std::shared_ptr<Entry>& slot = entries_[key.CanonicalText()];
    if (!slot) slot = std::make_shared<Entry>();
    entry = slot;
  }
  const std::string shape_text = shape.CanonicalText();

  bool want_promote = false;
  std::unique_lock<std::mutex> lk(entry->mu);
  VariantSlot& slot = entry->variants[shape_text];
  ++slot.heat;
  for (;;) {
    switch (slot.state) {
      case VariantSlot::kReady:
        slot.last_used = ++lru_tick_;
        return slot.loaded;
      case VariantSlot::kFailed:
        return nullptr;
      case VariantSlot::kBuilding:
        // Eager launches wait for the variant (mirroring how forced generic
        // launches wait on a build); kAuto never blocks — the generic
        // artifact serves this launch.
        if (mode != vgpu::ShapeMode::kEager) return nullptr;
        entry->cv.wait(lk);
        continue;
      case VariantSlot::kUnknown:
      case VariantSlot::kMissing:
        break;
    }
    break;
  }

  const bool may_build = mode == vgpu::ShapeMode::kEager && mod != nullptr;
  if (slot.state == VariantSlot::kMissing && !may_build) {
    // The load-only ladder already came up empty. Queue a background
    // promotion once the pair is hot; this launch runs on the generic TU.
    if (mode == vgpu::ShapeMode::kAuto && mod != nullptr && !slot.promote_queued &&
        slot.heat >= opts_.shape_hot_threshold && ToolchainAvailable()) {
      slot.promote_queued = true;
      want_promote = true;
    }
    lk.unlock();
    if (want_promote) {
      PromoteJob job;
      job.entry = entry;
      job.key = key;
      job.mod = std::move(mod);
      job.shape = shape;
      job.shape_text = shape_text;
      std::lock_guard<std::mutex> lk2(mu_);
      if (!promo_shutdown_) {
        if (!promoter_.joinable()) promoter_ = std::thread(&NativeEngine::PromoterMain, this);
        promo_queue_.push_back(std::move(job));
        promo_cv_.notify_all();
      }
    }
    return nullptr;
  }

  // First probe (both modes) or eager build: run the ladder inline.
  slot.state = VariantSlot::kBuilding;
  lk.unlock();

  std::shared_ptr<LoadedModule> lm;
  try {
    lm = LoadOrBuildVariant(key, mod.get(), shape, may_build);
  } catch (...) {
    lm = nullptr;
  }
  FinishVariant(entry, shape_text, lm, /*built=*/may_build);
  if (lm) {
    std::lock_guard<std::mutex> lk2(entry->mu);
    entry->variants[shape_text].last_used = ++lru_tick_;
  }
  return lm;
}

void NativeEngine::FinishVariant(const std::shared_ptr<Entry>& entry,
                                 const std::string& shape_text,
                                 std::shared_ptr<LoadedModule> lm, bool built) {
  // Evicted handles are released outside the lock: the shared_ptr dlcloses
  // the SO once the last in-flight launch using it drops its reference.
  std::vector<std::shared_ptr<LoadedModule>> evicted;
  {
    std::lock_guard<std::mutex> lk(entry->mu);
    VariantSlot& slot = entry->variants[shape_text];
    if (lm) {
      slot.loaded = std::move(lm);
      slot.state = VariantSlot::kReady;
      slot.promote_queued = false;

      unsigned ready = 0;
      for (const auto& [text, vs] : entry->variants) {
        if (vs.state == VariantSlot::kReady) ++ready;
      }
      while (ready > opts_.max_shape_variants) {
        auto victim = entry->variants.end();
        for (auto it = entry->variants.begin(); it != entry->variants.end(); ++it) {
          if (it->first == shape_text || it->second.state != VariantSlot::kReady) continue;
          if (victim == entry->variants.end() ||
              it->second.last_used < victim->second.last_used) {
            victim = it;
          }
        }
        if (victim == entry->variants.end()) break;  // only the new variant left
        evicted.push_back(std::move(victim->second.loaded));
        victim->second.loaded.reset();
        // Back to kUnknown: the disk/store artifact survives eviction, so a
        // future launch re-enters the load ladder instead of rebuilding.
        victim->second.state = VariantSlot::kUnknown;
        victim->second.heat = 0;
        victim->second.promote_queued = false;
        --ready;
      }
    } else {
      slot.loaded.reset();
      slot.state = built ? VariantSlot::kFailed : VariantSlot::kMissing;
      slot.promote_queued = false;
    }
    entry->cv.notify_all();
  }
  if (!evicted.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.shape_evicted += evicted.size();
  }
}

void NativeEngine::PromoterMain() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    promo_cv_.wait(lk, [&] { return promo_shutdown_ || !promo_queue_.empty(); });
    if (promo_shutdown_) return;
    PromoteJob job = std::move(promo_queue_.front());
    promo_queue_.pop_front();
    ++promo_inflight_;
    lk.unlock();

    bool run = false;
    {
      std::lock_guard<std::mutex> elk(job.entry->mu);
      VariantSlot& slot = job.entry->variants[job.shape_text];
      if (slot.state == VariantSlot::kUnknown || slot.state == VariantSlot::kMissing) {
        slot.state = VariantSlot::kBuilding;
        run = true;
      }
    }
    if (run) {
      std::shared_ptr<LoadedModule> lm;
      try {
        lm = LoadOrBuildVariant(job.key, job.mod.get(), job.shape, /*may_build=*/true);
      } catch (...) {
        lm = nullptr;
      }
      FinishVariant(job.entry, job.shape_text, std::move(lm), /*built=*/true);
    }

    lk.lock();
    --promo_inflight_;
    promo_cv_.notify_all();
  }
}

void NativeEngine::DrainShapeBuilds() {
  std::unique_lock<std::mutex> lk(mu_);
  promo_cv_.wait(lk, [&] { return promo_queue_.empty() && promo_inflight_ == 0; });
}

bool NativeEngine::IsVariantReady(const kcc::ModuleCacheKey& key, const ShapeSpec& shape) const {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(key.CanonicalText());
    if (it == entries_.end()) return false;
    entry = it->second;
  }
  std::lock_guard<std::mutex> lk(entry->mu);
  auto it = entry->variants.find(shape.CanonicalText());
  return it != entry->variants.end() && it->second.state == VariantSlot::kReady;
}

bool NativeEngine::TryLaunch(vcuda::Context& ctx, const vcuda::NativeLaunchRequest& req,
                             vgpu::LaunchStats* out) {
  if (req.served_shape != nullptr) *req.served_shape = false;
  if (req.key == nullptr || req.kernel == nullptr || req.cfg == nullptr || out == nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.fallbacks;
    return false;
  }

  // The generic artifact resolves first and stays resident: it is the
  // always-available fallback the variant ladder sits on, and the build/hit
  // counters it feeds keep their exact meanings whether or not a variant
  // ends up serving. Only once the generic tier can serve this key at all do
  // we look for a shape-specialized variant on top. Variants assume the
  // 32-lane warp layout their codegen bakes in, so any other warp size stays
  // on the generic path.
  std::shared_ptr<LoadedModule> lm =
      Resolve(*req.key, req.module.get(), /*may_build=*/req.require);
  bool shape_served = false;
  if (lm != nullptr) {
    const vgpu::ShapeMode mode = vgpu::ResolveShapeMode(opts_.shape_mode);
    if (mode != vgpu::ShapeMode::kOff && ctx.device().warp_size == 32) {
      std::shared_ptr<LoadedModule> variant =
          ResolveVariant(*req.key, req.module, ShapeSpec::FromConfig(*req.cfg), mode);
      if (variant != nullptr) {
        lm = std::move(variant);
        shape_served = true;
      }
    }
  }
  if (!lm) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.fallbacks;
    return false;
  }
  auto it = lm->kernels.find(req.kernel->name);
  if (it == lm->kernels.end()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.fallbacks;
    return false;
  }
  *out = RunNative(ctx, *lm, it->second, req);
  if (shape_served && req.served_shape != nullptr) *req.served_shape = true;
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.served_launches;
  if (shape_served) {
    ++stats_.shape_served_launches;
    ++stats_.shape_memory_hits;
  } else {
    ++stats_.memory_hits;
  }
  return true;
}

vgpu::LaunchStats NativeEngine::RunNative(vcuda::Context& ctx, const LoadedModule& lm,
                                          unsigned kernel_index,
                                          const vcuda::NativeLaunchRequest& req) {
  const vgpu::CompiledKernel& k = *req.kernel;
  const vgpu::LaunchConfig& cfg = *req.cfg;
  const vgpu::DeviceProfile& dev = ctx.device();

  bool has_global_atomic = false;
  for (const vgpu::Instr& i : k.code) {
    if (IsGlobalAtomic(i)) {
      has_global_atomic = true;
      break;
    }
  }

  // The shared launch shell — the same validation, spill clamping, policy
  // resolution, and chunk plan the interpreter runs (vgpu/tier.hpp).
  vgpu::LaunchShell shell =
      vgpu::PrepareLaunch(dev, cfg, k.stats.reg_count, k.static_smem_bytes, has_global_atomic);
  KSPEC_CHECK_MSG(cfg.args.size() == k.params.size(), "argument count mismatch");

  const unsigned nthreads = static_cast<unsigned>(cfg.block.Count());
  const unsigned nwarps = CeilDiv(nthreads, dev.warp_size);
  const unsigned stride = nwarps * dev.warp_size;

  // Per-lane thread coordinates, the interpreter's exact formula (padding
  // lanes clamp to the last thread).
  std::vector<std::uint32_t> tid_x(stride), tid_y(stride), tid_z(stride);
  for (unsigned t = 0; t < stride; ++t) {
    const unsigned lin = std::min(t, nthreads - 1);
    tid_x[t] = lin % cfg.block.x;
    tid_y[t] = (lin / cfg.block.x) % cfg.block.y;
    tid_z[t] = lin / (cfg.block.x * cfg.block.y);
  }

  std::vector<KspecNativeTexture> textures(cfg.textures.size());
  for (std::size_t i = 0; i < cfg.textures.size(); ++i) {
    textures[i].base = cfg.textures[i].base;
    textures[i].w = cfg.textures[i].w;
    textures[i].h = cfg.textures[i].h;
  }

  const std::size_t shared_bytes =
      static_cast<std::size_t>(k.static_smem_bytes) + cfg.dynamic_smem_bytes;
  FailCtx fctx;
  fctx.kernel = &k;
  fctx.shared_size = shared_bytes;
  fctx.const_size = req.const_mem.size();

  KspecNativeLaunch L;
  L.is_fermi = dev.IsFermi() ? 1 : 0;
  L.warp_size = dev.warp_size;
  L.shared_mem_banks = dev.shared_mem_banks;
  L.cycles_per_global_tx = dev.cycles_per_global_tx;
  L.shared_access_cost = dev.shared_access_cost;
  L.watchdog_warp_instrs = dev.watchdog_warp_instrs;
  L.grid_x = cfg.grid.x;
  L.grid_y = cfg.grid.y;
  L.grid_z = cfg.grid.z;
  L.block_x = cfg.block.x;
  L.block_y = cfg.block.y;
  L.block_z = cfg.block.z;
  L.args = cfg.args.data();
  L.nargs = cfg.args.size();
  L.cmem = req.const_mem.data();
  L.cmem_bytes = req.const_mem.size();
  L.textures = textures.data();
  L.ntextures = textures.size();
  L.tid_x = tid_x.data();
  L.tid_y = tid_y.data();
  L.tid_z = tid_z.data();
  L.cb.gmem = &ctx.memory();
  L.cb.try_access = &TryAccessCb;
  L.cb.access = &AccessCb;
  L.cb.fail_ctx = &fctx;
  L.cb.fail = &FailCb;

  // The per-worker execution state the SO borrows for each block. Mirrors
  // BlockRunner: the register file and shared array are reused across blocks
  // and chunks, the watchdog accumulator spans the runner's lifetime.
  struct Runner {
    std::vector<std::uint64_t> regs;
    std::vector<unsigned char> shared;
    std::uint64_t wd_accum = 0;
  };
  auto make_runner = [&] {
    auto r = std::make_unique<Runner>();
    r->regs.resize(static_cast<std::size_t>(k.num_vregs) * stride);
    r->shared.resize(shared_bytes);
    return r;
  };

  std::vector<vgpu::BlockStats> parts(shell.nparts);
  auto run_chunk = [&](Runner& r, std::size_t ci) {
    KspecNativeStats ns;  // zero-initialized; the SO only accumulates
    const std::uint64_t b0 = static_cast<std::uint64_t>(ci) * shell.chunk;
    const std::uint64_t b1 = std::min<std::uint64_t>(shell.nblocks, b0 + shell.chunk);
    for (std::uint64_t b = b0; b < b1; ++b) {
      const vgpu::Dim3 cta = vgpu::LinearToCta(cfg.grid, b);
      KspecNativeBlock blk;
      blk.ctaid_x = cta.x;
      blk.ctaid_y = cta.y;
      blk.ctaid_z = cta.z;
      blk.regs = r.regs.data();
      blk.shared = r.shared.data();
      blk.shared_bytes = shared_bytes;
      blk.stats = &ns;
      blk.wd_accum = &r.wd_accum;
      lm.run_block(kernel_index, &L, &blk);
    }
    vgpu::BlockStats& p = parts[ci];
    p.warp_instrs = ns.warp_instrs;
    p.lane_instrs = ns.lane_instrs;
    p.global_instrs = ns.global_instrs;
    p.mem_transactions = ns.mem_transactions;
    p.texture_fetches = ns.texture_fetches;
    p.shared_conflict_cycles = ns.shared_conflict_cycles;
    p.barriers = ns.barriers;
    p.issue_cycles = ns.issue_cycles;
    p.memory_cycles = ns.memory_cycles;
    p.ilp_sum = ns.ilp_sum;
  };

  if (!shell.parallel) {
    std::unique_ptr<Runner> runner = make_runner();
    for (std::size_t ci = 0; ci < shell.nparts; ++ci) run_chunk(*runner, ci);
  } else {
    std::mutex mu;
    std::vector<std::unique_ptr<Runner>> idle;
    std::function<void(std::size_t)> fn = [&](std::size_t ci) {
      std::unique_ptr<Runner> runner;
      {
        std::lock_guard<std::mutex> lk(mu);
        if (!idle.empty()) {
          runner = std::move(idle.back());
          idle.pop_back();
        }
      }
      if (!runner) runner = make_runner();
      run_chunk(*runner, ci);
      std::lock_guard<std::mutex> lk(mu);
      idle.push_back(std::move(runner));
    };
    vgpu::ExecPool::Instance().ParallelFor(shell.workers, shell.nparts, fn);
  }

  vgpu::FinalizeLaunchStats(dev, shell, parts);
  return shell.stats;
}

}  // namespace kspec::native
