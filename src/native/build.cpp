#include "native/build.hpp"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <sstream>

#include "support/serialize.hpp"
#include "support/str.hpp"
#include "support/temp_dir.hpp"

#ifndef KSPEC_HOST_CXX
#define KSPEC_HOST_CXX ""
#endif

namespace kspec::native {
namespace {

std::string ShellQuoted(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

bool Probe(const std::string& cxx) {
  if (cxx.empty()) return false;
  const std::string cmd = ShellQuoted(cxx) + " --version > /dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;
}

std::string Discover() {
  if (const char* env = std::getenv("KSPEC_NATIVE_CXX")) {
    // Authoritative: a broken value means "pretend there is no toolchain",
    // not "fall through to one that works".
    return Probe(env) ? std::string(env) : std::string();
  }
  if (Probe(KSPEC_HOST_CXX)) return KSPEC_HOST_CXX;
  for (const char* candidate : {"c++", "g++", "clang++"}) {
    if (Probe(candidate)) return candidate;
  }
  return {};
}

}  // namespace

const std::string& HostCompiler() {
  static const std::string cxx = Discover();
  return cxx;
}

std::vector<std::uint8_t> CompileSharedObject(const std::string& source, std::string* error) {
  const std::string& cxx = HostCompiler();
  if (cxx.empty()) {
    if (error) *error = "no usable host C++ compiler";
    return {};
  }
  ScopedTempDir scratch("kspec-native-build");
  if (!scratch.valid()) {
    if (error) *error = "could not create a build scratch directory";
    return {};
  }
  const std::string src = scratch.File("native.cpp");
  const std::string so = scratch.File("native.so");
  const std::string log = scratch.File("build.log");
  {
    std::ofstream f(src, std::ios::binary);
    f << source;
    if (!f) {
      if (error) *error = Format("could not write %s", src.c_str());
      return {};
    }
  }
  // -fvisibility=hidden keeps every prelude symbol private to the SO; only
  // the extern "C" entry points (emitted with default visibility) export.
  // -O3 so the full-mask lane loops (32 independent scalar ops) vectorize;
  // no -ffast-math or -march flags — results must stay bit-identical to the
  // interpreter and artifacts portable across the machines sharing a store.
  const std::string cmd = ShellQuoted(cxx) +
                          " -std=c++20 -O3 -fPIC -shared -fvisibility=hidden -o " +
                          ShellQuoted(so) + " " + ShellQuoted(src) + " > " +
                          ShellQuoted(log) + " 2>&1";
  if (std::system(cmd.c_str()) != 0) {
    if (error) {
      std::ifstream lf(log, std::ios::binary);
      std::ostringstream diag;
      diag << lf.rdbuf();
      *error = Format("host compiler failed: %s", diag.str().c_str());
    }
    return {};
  }
  std::vector<std::uint8_t> bytes;
  if (!ReadFileBytes(so, &bytes) || bytes.empty()) {
    if (error) *error = Format("could not read compiled object %s", so.c_str());
    return {};
  }
  return bytes;
}

}  // namespace kspec::native
