#include "native/shape.hpp"

#include "support/str.hpp"

namespace kspec::native {

ShapeSpec ShapeSpec::FromConfig(const vgpu::LaunchConfig& cfg) {
  ShapeSpec s;
  s.block_x = cfg.block.x;
  s.block_y = cfg.block.y;
  s.block_z = cfg.block.z;
  s.grid_x = cfg.grid.x;
  s.grid_y = cfg.grid.y;
  s.grid_z = cfg.grid.z;
  return s;
}

std::string ShapeSpec::CanonicalText() const {
  return Format("b%ux%ux%u g%ux%ux%u", block_x, block_y, block_z, grid_x, grid_y, grid_z);
}

std::uint64_t ShapeSpec::Hash() const {
  const std::string text = CanonicalText();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace kspec::native
