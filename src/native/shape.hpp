// Launch-shape signatures for shape-specialized native variants.
//
// A ShapeSpec captures the launch-time constants the shape-specialization
// mode bakes into an emitted TU: the block and grid dimensions. That is
// exactly the information needed to turn `ntid`/`nctaid` reads into
// `constexpr`, to fix the warp count and the boundary-warp mask at compile
// time, and to seed the mask-constant-propagation pass with the value ranges
// of `tid`/`ctaid`. Dynamic shared memory and kernel arguments stay runtime
// inputs — specializing on them would explode the variant space for no mask
// information.
//
// The canonical text ("b16x16x1 g32x24x1") names the variant everywhere: it
// is appended to the module key's canonical text to form the variant build
// key embedded in the artifact, and its hash is the `s%016llx` half of the
// variant artifact file name.
#pragma once

#include <cstdint>
#include <string>

#include "vgpu/launch.hpp"

namespace kspec::native {

struct ShapeSpec {
  unsigned block_x = 1, block_y = 1, block_z = 1;
  unsigned grid_x = 1, grid_y = 1, grid_z = 1;

  static ShapeSpec FromConfig(const vgpu::LaunchConfig& cfg);

  unsigned threads_per_block() const { return block_x * block_y * block_z; }
  unsigned warps_per_block(unsigned warp_size) const {
    return (threads_per_block() + warp_size - 1) / warp_size;
  }

  // Stable one-line signature, e.g. "b16x16x1 g32x24x1".
  std::string CanonicalText() const;

  // FNV-1a over the canonical text; names the variant artifact on disk.
  std::uint64_t Hash() const;

  bool operator==(const ShapeSpec& o) const = default;
};

}  // namespace kspec::native
