// The native execution tier: content-addressed shared-object artifacts plus
// the host-side launch mirror that runs them.
//
// NativeEngine implements vcuda::NativeExecutionService. Per ModuleCacheKey
// it maintains a small state machine (unknown -> building -> ready | failed)
// over a three-level artifact hierarchy:
//
//   memory  — a dlopen'd shared object, reused for every later launch;
//   disk    — `k%016llx.nso` files in cache_dir (the .kmod layout's sibling):
//             a second process with a warm cache directory serves the native
//             tier with zero recompiles;
//   store   — the shared netd::ArtifactStore, when attached.
//
// Every artifact is the self-validating kcc::SerializeNative envelope; a
// corrupt file is quarantined (renamed aside) and treated as a miss, a loaded
// SO whose kspec_native_abi_version or embedded build key disagrees is
// discarded as stale — in every case the launch degrades to the decoded tier
// instead of failing.
//
// Build policy follows NativeLaunchRequest::require: a forced native launch
// builds inline (single-flight per key; concurrent launches wait); a kAuto
// launch only serves what is already loadable and leaves background builds to
// NativeBuildExecutor riding the serve pipeline.
//
// The launch itself mirrors the interpreter's shell exactly: the shared
// vgpu::PrepareLaunch / FinalizeLaunchStats bracket per-chunk runs, per-worker
// register files come from the same free-list idiom, and the chunk partials
// fold in chunk order — which is why the native tier's LaunchStats are
// bit-identical to the decoded tier's.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "native/abi.hpp"
#include "support/temp_dir.hpp"
#include "vcuda/native_hook.hpp"

namespace kspec::netd {
class ArtifactStore;
}

namespace kspec::native {

struct NativeEngineStats {
  std::uint64_t builds_started = 0;
  std::uint64_t builds_completed = 0;
  std::uint64_t build_failures = 0;
  std::uint64_t served_launches = 0;   // launches run on the native tier
  std::uint64_t fallbacks = 0;         // TryLaunch returned false
  std::uint64_t memory_hits = 0;       // already-loaded SO served a launch
  std::uint64_t disk_hits = 0;         // artifact loaded from cache_dir
  std::uint64_t store_hits = 0;        // artifact fetched from the store
  std::uint64_t corrupt_quarantined = 0;
  std::uint64_t stale_discarded = 0;   // ABI-version or key mismatch
};

class NativeEngine : public vcuda::NativeExecutionService {
 public:
  struct Options {
    // Directory for .nso artifacts; "" disables the disk tier. Shared with
    // the .kmod cache_dir by convention (distinct extensions).
    std::string cache_dir;
    // Optional shared artifact store (not owned; must outlive the engine).
    netd::ArtifactStore* store = nullptr;
  };

  NativeEngine();
  explicit NativeEngine(Options opts);
  ~NativeEngine() override;

  NativeEngine(const NativeEngine&) = delete;
  NativeEngine& operator=(const NativeEngine&) = delete;

  // vcuda::NativeExecutionService. False = degrade to decoded (and counted);
  // exceptions are the kernel's own faults, raised with the interpreter's
  // exact error text.
  bool TryLaunch(vcuda::Context& ctx, const vcuda::NativeLaunchRequest& req,
                 vgpu::LaunchStats* out) override;

  // Makes the artifact for (key, mod) servable now: memory -> disk -> store
  // -> emit + compile + dlopen, publishing new builds back to disk and store.
  // Blocking; single-flight per key (concurrent callers wait). False when the
  // native tier cannot serve this key (no toolchain, failed build) — that
  // answer is sticky per key until the process restarts.
  bool EnsureReady(const kcc::ModuleCacheKey& key, const kcc::CompiledModule& mod);

  // True when a launch for `key` would be served from memory right now.
  bool IsReady(const kcc::ModuleCacheKey& key) const;

  // Disk-tier artifact name for `key` ("k%016llx.nso").
  static std::string ArtifactFileName(const kcc::ModuleCacheKey& key);

  NativeEngineStats stats() const;

 private:
  struct LoadedModule;
  struct Entry;

  // Returns the ready entry for the request, loading or (require) building as
  // allowed. nullptr = degrade.
  std::shared_ptr<LoadedModule> Resolve(const kcc::ModuleCacheKey& key,
                                        const kcc::CompiledModule* mod, bool may_build);
  // The artifact ladder for one key, called with the entry locked in
  // kBuilding state. Returns the loaded SO or nullptr.
  std::shared_ptr<LoadedModule> LoadOrBuild(const kcc::ModuleCacheKey& key,
                                            const kcc::CompiledModule* mod, bool may_build);
  std::shared_ptr<LoadedModule> TryLoadEnvelope(const std::vector<std::uint8_t>& envelope,
                                                const kcc::ModuleCacheKey& key,
                                                const std::string& origin);
  std::shared_ptr<LoadedModule> OpenSharedObject(const std::vector<std::uint8_t>& so_bytes,
                                                 const kcc::ModuleCacheKey& key,
                                                 const std::string& origin);

  vgpu::LaunchStats RunNative(vcuda::Context& ctx, const LoadedModule& lm, unsigned kernel_index,
                              const vcuda::NativeLaunchRequest& req);

  Options opts_;
  ScopedTempDir scratch_;  // dlopen needs the SO image on disk
  mutable std::mutex mu_;  // guards entries_, stats_, scratch_ naming
  std::map<std::string, std::shared_ptr<Entry>> entries_;  // by canonical key text
  NativeEngineStats stats_;
  std::uint64_t scratch_seq_ = 0;
};

}  // namespace kspec::native
