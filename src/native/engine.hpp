// The native execution tier: content-addressed shared-object artifacts plus
// the host-side launch mirror that runs them.
//
// NativeEngine implements vcuda::NativeExecutionService. Per ModuleCacheKey
// it maintains a small state machine (unknown -> building -> ready | failed)
// over a three-level artifact hierarchy:
//
//   memory  — a dlopen'd shared object, reused for every later launch;
//   disk    — `k%016llx.nso` files in cache_dir (the .kmod layout's sibling):
//             a second process with a warm cache directory serves the native
//             tier with zero recompiles;
//   store   — the shared netd::ArtifactStore, when attached.
//
// Every artifact is the self-validating kcc::SerializeNative envelope; a
// corrupt file is quarantined (renamed aside) and treated as a miss, a loaded
// SO whose kspec_native_abi_version or embedded build key disagrees is
// discarded as stale — in every case the launch degrades to the decoded tier
// instead of failing.
//
// Build policy follows NativeLaunchRequest::require: a forced native launch
// builds inline (single-flight per key; concurrent launches wait); a kAuto
// launch only serves what is already loadable and leaves background builds to
// NativeBuildExecutor riding the serve pipeline.
//
// On top of the generic artifact each module keeps a bounded ladder of
// shape-specialized variants, content-addressed by (module key, launch
// shape): divergence-aware TUs whose launch dimensions are compile-time
// constants (codegen + maskprop). The generic artifact always stays resident
// as the fallback, so a kAuto launch never blocks: under ShapeMode::kAuto a
// (module, shape) pair that crosses Options::shape_hot_threshold launches is
// promoted by a background builder thread; under kEager the variant builds
// inline. Variants beyond Options::max_shape_variants are LRU-evicted — and
// since shape TUs hold no thread_local state, an evicted variant's shared
// object really is dlclosed once its last in-flight launch completes.
//
// The launch itself mirrors the interpreter's shell exactly: the shared
// vgpu::PrepareLaunch / FinalizeLaunchStats bracket per-chunk runs, per-worker
// register files come from the same free-list idiom, and the chunk partials
// fold in chunk order — which is why the native tier's LaunchStats are
// bit-identical to the decoded tier's.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "native/abi.hpp"
#include "native/shape.hpp"
#include "support/temp_dir.hpp"
#include "vcuda/native_hook.hpp"
#include "vgpu/tier.hpp"

namespace kspec::netd {
class ArtifactStore;
}

namespace kspec::native {

struct NativeEngineStats {
  std::uint64_t builds_started = 0;
  std::uint64_t builds_completed = 0;
  std::uint64_t build_failures = 0;
  std::uint64_t served_launches = 0;   // launches run on the native tier
  std::uint64_t fallbacks = 0;         // TryLaunch returned false
  std::uint64_t memory_hits = 0;       // already-loaded SO served a launch
  std::uint64_t disk_hits = 0;         // artifact loaded from cache_dir
  std::uint64_t store_hits = 0;        // artifact fetched from the store
  std::uint64_t corrupt_quarantined = 0;
  std::uint64_t stale_discarded = 0;   // ABI-version or key mismatch

  // Shape-specialized variants, counted separately from the generic ladder so
  // the generic counters keep their exact PR-9 meanings.
  std::uint64_t shape_builds_started = 0;
  std::uint64_t shape_builds_completed = 0;
  std::uint64_t shape_build_failures = 0;
  std::uint64_t shape_served_launches = 0;  // launches run on a shape variant
  std::uint64_t shape_memory_hits = 0;
  std::uint64_t shape_disk_hits = 0;
  std::uint64_t shape_store_hits = 0;
  std::uint64_t shape_evicted = 0;          // resident variants LRU-evicted
};

class NativeEngine : public vcuda::NativeExecutionService {
 public:
  struct Options {
    // Directory for .nso artifacts; "" disables the disk tier. Shared with
    // the .kmod cache_dir by convention (distinct extensions).
    std::string cache_dir;
    // Optional shared artifact store (not owned; must outlive the engine).
    netd::ArtifactStore* store = nullptr;
    // Shape-specialization fallback policy; KSPEC_NATIVE_SHAPE and
    // vgpu::SetShapeModeOverride take precedence (vgpu::ResolveShapeMode).
    vgpu::ShapeMode shape_mode = vgpu::ShapeMode::kAuto;
    // Resident shape variants per module; least-recently-served variants are
    // dlclosed beyond this (their disk/store artifacts survive).
    unsigned max_shape_variants = 4;
    // kAuto: launches of one (module, shape) before background promotion.
    unsigned shape_hot_threshold = 3;
  };

  NativeEngine();
  explicit NativeEngine(Options opts);
  ~NativeEngine() override;

  NativeEngine(const NativeEngine&) = delete;
  NativeEngine& operator=(const NativeEngine&) = delete;

  // vcuda::NativeExecutionService. False = degrade to decoded (and counted);
  // exceptions are the kernel's own faults, raised with the interpreter's
  // exact error text.
  bool TryLaunch(vcuda::Context& ctx, const vcuda::NativeLaunchRequest& req,
                 vgpu::LaunchStats* out) override;

  // Makes the artifact for (key, mod) servable now: memory -> disk -> store
  // -> emit + compile + dlopen, publishing new builds back to disk and store.
  // Blocking; single-flight per key (concurrent callers wait). False when the
  // native tier cannot serve this key (no toolchain, failed build) — that
  // answer is sticky per key until the process restarts.
  bool EnsureReady(const kcc::ModuleCacheKey& key, const kcc::CompiledModule& mod);

  // True when a launch for `key` would be served from memory right now.
  bool IsReady(const kcc::ModuleCacheKey& key) const;

  // True when (key, shape) would be served from a resident shape variant.
  bool IsVariantReady(const kcc::ModuleCacheKey& key, const ShapeSpec& shape) const;

  // Blocks until every background shape promotion queued so far has finished
  // (the queue is empty and no build is in flight). Test/bench hook.
  void DrainShapeBuilds();

  // Disk-tier artifact name for `key` ("k%016llx.nso").
  static std::string ArtifactFileName(const kcc::ModuleCacheKey& key);

  // Disk-tier artifact name for a (key, shape) variant ("k%016llx_s%016llx.nso").
  static std::string VariantFileName(const kcc::ModuleCacheKey& key, const ShapeSpec& shape);

  // The variant build key embedded in a shape artifact: the module key's
  // canonical text, a '\n', then the shape's canonical text. The generic
  // artifact embeds the bare module text, so the two can never be confused.
  static std::string VariantKeyText(const kcc::ModuleCacheKey& key, const ShapeSpec& shape);

  NativeEngineStats stats() const;

 private:
  struct LoadedModule;
  struct Entry;
  struct VariantSlot;
  struct PromoteJob;

  // Returns the ready entry for the request, loading or (require) building as
  // allowed. nullptr = degrade.
  std::shared_ptr<LoadedModule> Resolve(const kcc::ModuleCacheKey& key,
                                        const kcc::CompiledModule* mod, bool may_build);
  // The artifact ladder for one key, called with the entry locked in
  // kBuilding state. Returns the loaded SO or nullptr.
  std::shared_ptr<LoadedModule> LoadOrBuild(const kcc::ModuleCacheKey& key,
                                            const kcc::CompiledModule* mod, bool may_build);
  std::shared_ptr<LoadedModule> TryLoadEnvelope(const std::vector<std::uint8_t>& envelope,
                                                const std::string& key_text,
                                                const std::string& origin, bool closeable);
  std::shared_ptr<LoadedModule> OpenSharedObject(const std::vector<std::uint8_t>& so_bytes,
                                                 const std::string& key_text,
                                                 const std::string& origin, bool closeable);

  // Shape-variant ladder. ResolveVariant implements the per-mode policy
  // (serve resident, probe disk/store, build inline for kEager, enqueue a
  // background promotion for hot kAuto pairs); LoadOrBuildVariant is the
  // memory -> disk -> store -> build ladder for one (key, shape).
  std::shared_ptr<LoadedModule> ResolveVariant(const kcc::ModuleCacheKey& key,
                                               std::shared_ptr<const kcc::CompiledModule> mod,
                                               const ShapeSpec& shape, vgpu::ShapeMode mode);
  std::shared_ptr<LoadedModule> LoadOrBuildVariant(const kcc::ModuleCacheKey& key,
                                                   const kcc::CompiledModule* mod,
                                                   const ShapeSpec& shape, bool may_build);
  // Finishes a variant build slot under entry->mu and LRU-evicts beyond the
  // per-module cap.
  void FinishVariant(const std::shared_ptr<Entry>& entry, const std::string& shape_text,
                     std::shared_ptr<LoadedModule> lm, bool built);
  void PromoterMain();

  vgpu::LaunchStats RunNative(vcuda::Context& ctx, const LoadedModule& lm, unsigned kernel_index,
                              const vcuda::NativeLaunchRequest& req);

  Options opts_;
  ScopedTempDir scratch_;  // dlopen needs the SO image on disk
  mutable std::mutex mu_;  // guards entries_, stats_, scratch_ naming, promoter state
  std::map<std::string, std::shared_ptr<Entry>> entries_;  // by canonical key text
  NativeEngineStats stats_;
  std::uint64_t scratch_seq_ = 0;
  std::atomic<std::uint64_t> lru_tick_{0};  // advanced per shape-variant serve

  // Background promotion of hot (module, shape) pairs (kAuto).
  std::thread promoter_;
  std::condition_variable promo_cv_;
  std::deque<PromoteJob> promo_queue_;
  unsigned promo_inflight_ = 0;
  bool promo_shutdown_ = false;
};

}  // namespace kspec::native
