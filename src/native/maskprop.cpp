#include "native/maskprop.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>

#include "native/shape.hpp"

namespace kspec::native {
namespace {

using vgpu::CmpOp;
using vgpu::Instr;
using vgpu::Opcode;
using vgpu::Operand;
using vgpu::SpecialReg;
using vgpu::Type;

using u64 = std::uint64_t;
using i64 = std::int64_t;
using u32 = std::uint32_t;
using i32 = std::int32_t;

// Range facts live in [0, kDomainMax] so the raw cell value equals its i32,
// u32, i64 and u64 interpretations and survives enc_i32 unchanged.
constexpr i64 kDomainMax = 0x7fffffff;

// Uid tag spaces (identity bookkeeping for uniform values; equality is only
// used to keep an identity stable across joins, never for soundness).
constexpr u64 kUidDef = 1ull << 63;    // | pc
constexpr u64 kUidParam = 1ull << 62;  // | param index
constexpr u64 kUidJoin = 1ull << 61;   // | (leader << 20) | reg
constexpr u64 kUidSreg = 3ull << 60;   // | special-reg id

struct AV {
  bool is_const = false;
  u64 cval = 0;
  bool uniform = false;
  u64 uid = 0;
  bool ranged = false;
  i64 lo = 0, hi = 0;

  bool operator==(const AV&) const = default;
};

AV Top() { return AV{}; }

AV Const(u64 v) {
  AV r;
  r.is_const = true;
  r.cval = v;
  r.uniform = true;
  r.uid = (5ull << 60) | (v & 0x0fffffffffffffffull);
  if (v <= static_cast<u64>(kDomainMax)) {
    r.ranged = true;
    r.lo = r.hi = static_cast<i64>(v);
  }
  return r;
}

AV UniformVal(u64 uid) {
  AV r;
  r.uniform = true;
  r.uid = uid;
  return r;
}

AV Ranged(i64 lo, i64 hi, bool uniform = false, u64 uid = 0) {
  if (lo < 0 || hi > kDomainMax || lo > hi) return uniform ? UniformVal(uid) : Top();
  if (lo == hi) return Const(static_cast<u64>(lo));
  AV r;
  r.ranged = true;
  r.lo = lo;
  r.hi = hi;
  r.uniform = uniform;
  r.uid = uid;
  return r;
}

std::optional<std::pair<i64, i64>> RangeOf(const AV& a) {
  if (a.is_const) {
    if (a.cval <= static_cast<u64>(kDomainMax)) {
      return std::pair<i64, i64>(static_cast<i64>(a.cval), static_cast<i64>(a.cval));
    }
    return std::nullopt;
  }
  if (a.ranged) return std::pair<i64, i64>(a.lo, a.hi);
  return std::nullopt;
}

// Merge at a non-reconvergence join: the warp enters over exactly one
// predecessor per dynamic visit, so uniformity survives (with a fresh but
// stable identity when the two sides disagree on which value it is).
AV JoinUniform(const AV& a, const AV& b, u64 join_uid) {
  AV r;
  if (a.is_const && b.is_const && a.cval == b.cval) return a;
  if (a.uniform && b.uniform) {
    r.uniform = true;
    r.uid = a.uid == b.uid ? a.uid : join_uid;
  }
  if (a.ranged && b.ranged) {
    r.ranged = true;
    r.lo = std::min(a.lo, b.lo);
    r.hi = std::max(a.hi, b.hi);
  } else {
    auto ra = RangeOf(a), rb = RangeOf(b);
    if (ra && rb) {
      r.ranged = true;
      r.lo = std::min(ra->first, rb->first);
      r.hi = std::max(ra->second, rb->second);
    }
  }
  return r;
}

// ---- Bit-exact integer folding, mirroring the emitted alu<>() templates. ----

u64 INorm(bool is64, u64 v) { return is64 ? v : static_cast<u64>(static_cast<u32>(v)); }
i64 AsSigned(bool is64, u64 v) {
  return is64 ? static_cast<i64>(v) : static_cast<i64>(static_cast<i32>(static_cast<u32>(v)));
}

bool FoldInt(Opcode op, Type ty, u64 a, u64 b, u64 c, u64* out) {
  if (ty == Type::kPred) ty = Type::kU32;  // emission maps pred to u32 ALU semantics
  if (ty == Type::kF32 || ty == Type::kF64) return false;
  const bool is64 = ty == Type::kI64 || ty == Type::kU64;
  const bool sg = ty == Type::kI32 || ty == Type::kI64;
  switch (op) {
    case Opcode::kAdd: *out = INorm(is64, a + b); return true;
    case Opcode::kSub: *out = INorm(is64, a - b); return true;
    case Opcode::kMul: *out = INorm(is64, a * b); return true;
    case Opcode::kMad: *out = INorm(is64, a * b + c); return true;
    case Opcode::kMul24: {
      const u64 x = a & 0xffffffu, y = b & 0xffffffu;
      if (sg) {
        const i64 sx = static_cast<i64>(x << 40) >> 40;
        const i64 sy = static_cast<i64>(y << 40) >> 40;
        *out = INorm(is64, static_cast<u64>(sx * sy));
      } else {
        *out = INorm(is64, x * y);
      }
      return true;
    }
    case Opcode::kDiv:
      if (sg) {
        const i64 d = AsSigned(is64, b);
        if (d == 0) { *out = 0; return true; }
        const i64 n = AsSigned(is64, a);
        if (n == INT64_MIN && d == -1) return false;  // UB in host C++; punt
        *out = INorm(is64, static_cast<u64>(n / d));
      } else {
        const u64 d = is64 ? b : static_cast<u32>(b);
        const u64 n = is64 ? a : static_cast<u32>(a);
        *out = d == 0 ? 0 : INorm(is64, n / d);
      }
      return true;
    case Opcode::kRem:
      if (sg) {
        const i64 d = AsSigned(is64, b);
        if (d == 0) { *out = 0; return true; }
        const i64 n = AsSigned(is64, a);
        if (n == INT64_MIN && d == -1) return false;
        *out = INorm(is64, static_cast<u64>(n % d));
      } else {
        const u64 d = is64 ? b : static_cast<u32>(b);
        const u64 n = is64 ? a : static_cast<u32>(a);
        *out = d == 0 ? 0 : INorm(is64, n % d);
      }
      return true;
    case Opcode::kMin:
    case Opcode::kMax:
      if (sg) {
        const i64 x = AsSigned(is64, a), y = AsSigned(is64, b);
        const i64 r = op == Opcode::kMin ? std::min(x, y) : std::max(x, y);
        *out = INorm(is64, static_cast<u64>(r));
      } else {
        const u64 x = is64 ? a : static_cast<u32>(a);
        const u64 y = is64 ? b : static_cast<u32>(b);
        *out = INorm(is64, op == Opcode::kMin ? std::min(x, y) : std::max(x, y));
      }
      return true;
    case Opcode::kNeg: *out = INorm(is64, ~a + 1); return true;
    case Opcode::kAbs: {
      const i64 v = AsSigned(is64, a);
      if (v == INT64_MIN) return false;
      *out = INorm(is64, static_cast<u64>(v < 0 ? -v : v));
      return true;
    }
    case Opcode::kAnd: *out = INorm(is64, a & b); return true;
    case Opcode::kOr: *out = INorm(is64, a | b); return true;
    case Opcode::kXor: *out = INorm(is64, a ^ b); return true;
    case Opcode::kNot: *out = INorm(is64, ~a); return true;
    case Opcode::kShl: {
      const unsigned width = is64 ? 64 : 32;
      *out = b >= width ? 0 : INorm(is64, a << b);
      return true;
    }
    case Opcode::kShr: {
      const unsigned width = is64 ? 64 : 32;
      if (sg) {
        const i64 v = AsSigned(is64, a);
        if (b >= width) { *out = INorm(is64, static_cast<u64>(v < 0 ? -1 : 0)); return true; }
        *out = INorm(is64, static_cast<u64>(v >> b));
      } else {
        if (b >= width) { *out = 0; return true; }
        const u64 v = is64 ? a : static_cast<u32>(a);
        *out = INorm(is64, v >> b);
      }
      return true;
    }
    default: return false;
  }
}

// Interval arithmetic for monotone ops over the nonnegative domain. Both
// inputs and the result must stay within [0, kDomainMax]; anything else
// drops the range (never widens unsoundly).
std::optional<std::pair<i64, i64>> RangeArith(Opcode op, const AV& a, const AV& b,
                                              const AV& c) {
  const auto ra = RangeOf(a);
  const auto rb = RangeOf(b);
  auto ok = [](i64 lo, i64 hi) -> std::optional<std::pair<i64, i64>> {
    if (lo < 0 || hi > kDomainMax || lo > hi) return std::nullopt;
    return std::pair<i64, i64>(lo, hi);
  };
  switch (op) {
    case Opcode::kAdd:
      if (ra && rb) return ok(ra->first + rb->first, ra->second + rb->second);
      return std::nullopt;
    case Opcode::kSub:
      if (ra && rb) return ok(ra->first - rb->second, ra->second - rb->first);
      return std::nullopt;
    case Opcode::kMul:
      if (ra && rb) return ok(ra->first * rb->first, ra->second * rb->second);
      return std::nullopt;
    case Opcode::kMad: {
      const auto rc = RangeOf(c);
      if (ra && rb && rc) {
        return ok(ra->first * rb->first + rc->first, ra->second * rb->second + rc->second);
      }
      return std::nullopt;
    }
    case Opcode::kMul24:
      // Sign-extension of the low 24 bits is the identity below 2^23.
      if (ra && rb && ra->second < (1 << 23) && rb->second < (1 << 23)) {
        return ok(ra->first * rb->first, ra->second * rb->second);
      }
      return std::nullopt;
    case Opcode::kDiv:
      if (ra && rb && rb->first > 0) return ok(ra->first / rb->second, ra->second / rb->first);
      return std::nullopt;
    case Opcode::kRem:
      if (ra && rb && rb->first > 0) return ok(0, rb->second - 1);
      return std::nullopt;
    case Opcode::kMin:
      if (ra && rb) {
        return ok(std::min(ra->first, rb->first), std::min(ra->second, rb->second));
      }
      return std::nullopt;
    case Opcode::kMax:
      if (ra && rb) {
        return ok(std::max(ra->first, rb->first), std::max(ra->second, rb->second));
      }
      return std::nullopt;
    case Opcode::kAnd:
      // x & y <= min(x, y) for nonnegative values.
      if (ra && rb) return ok(0, std::min(ra->second, rb->second));
      if (ra) return ok(0, ra->second);
      if (rb) return ok(0, rb->second);
      return std::nullopt;
    case Opcode::kAbs:
      return ra;  // identity on the nonnegative domain
    case Opcode::kShl:
      if (ra && b.is_const && b.cval < 31) {
        return ok(ra->first << b.cval, ra->second << b.cval);
      }
      return std::nullopt;
    case Opcode::kShr:
      if (ra && b.is_const && b.cval < 31) {
        return ok(ra->first >> b.cval, ra->second >> b.cval);
      }
      return std::nullopt;
    default: return std::nullopt;
  }
}

// Typed compare over proven intervals; mirrors the emitted setp<>() exactly
// when it answers (and stays silent otherwise).
enum class Tri { kUnknown, kTrue, kFalse };

Tri CmpIntervals(CmpOp cmp, i64 la, i64 ha, i64 lb, i64 hb) {
  switch (cmp) {
    case CmpOp::kEq:
      if (la == ha && lb == hb && la == lb) return Tri::kTrue;
      if (ha < lb || hb < la) return Tri::kFalse;
      return Tri::kUnknown;
    case CmpOp::kNe:
      if (ha < lb || hb < la) return Tri::kTrue;
      if (la == ha && lb == hb && la == lb) return Tri::kFalse;
      return Tri::kUnknown;
    case CmpOp::kLt:
      if (ha < lb) return Tri::kTrue;
      if (la >= hb) return Tri::kFalse;
      return Tri::kUnknown;
    case CmpOp::kLe:
      if (ha <= lb) return Tri::kTrue;
      if (la > hb) return Tri::kFalse;
      return Tri::kUnknown;
    case CmpOp::kGt:
      if (la > hb) return Tri::kTrue;
      if (ha <= lb) return Tri::kFalse;
      return Tri::kUnknown;
    case CmpOp::kGe:
      if (la >= hb) return Tri::kTrue;
      if (ha < lb) return Tri::kFalse;
      return Tri::kUnknown;
  }
  return Tri::kUnknown;
}

bool CmpConst(CmpOp cmp, Type ty, u64 a, u64 b) {
  auto apply = [&](auto x, auto y) -> bool {
    switch (cmp) {
      case CmpOp::kEq: return x == y;
      case CmpOp::kNe: return x != y;
      case CmpOp::kLt: return x < y;
      case CmpOp::kLe: return x <= y;
      case CmpOp::kGt: return x > y;
      case CmpOp::kGe: return x >= y;
    }
    return false;
  };
  switch (ty) {
    case Type::kI32:
      return apply(static_cast<i64>(vgpu::DecodeI32(a)), static_cast<i64>(vgpu::DecodeI32(b)));
    case Type::kU32:
      return apply(static_cast<i64>(static_cast<u32>(a)), static_cast<i64>(static_cast<u32>(b)));
    case Type::kI64: return apply(static_cast<i64>(a), static_cast<i64>(b));
    default: return apply(a, b);  // u64 / pred: raw unsigned compare
  }
}

// The comparison-domain interval of `a` under type `ty`, usable only when
// the interval compare is exact for that view. Domain values are in
// [0, kDomainMax], where all integer views agree; a constant outside the
// domain still has an exact signed view for i32/u32/i64.
std::optional<std::pair<i64, i64>> CmpRange(Type ty, const AV& a) {
  if (a.is_const) {
    switch (ty) {
      case Type::kI32: {
        const i64 v = vgpu::DecodeI32(a.cval);
        return std::pair<i64, i64>(v, v);
      }
      case Type::kU32: {
        const i64 v = static_cast<i64>(static_cast<u32>(a.cval));
        return std::pair<i64, i64>(v, v);
      }
      case Type::kI64: {
        const i64 v = static_cast<i64>(a.cval);
        return std::pair<i64, i64>(v, v);
      }
      case Type::kU64:
      case Type::kPred: {
        if (a.cval > static_cast<u64>(INT64_MAX)) return std::nullopt;
        const i64 v = static_cast<i64>(a.cval);
        return std::pair<i64, i64>(v, v);
      }
      default: return std::nullopt;  // float compares are never folded
    }
  }
  if (ty == Type::kF32 || ty == Type::kF64) return std::nullopt;
  return RangeOf(a);  // domain values read identically under every int view
}

// ---------------------------------------------------------------------------

std::vector<u32> CollectLeaders(const std::vector<Instr>& code) {
  std::set<u32> leaders;
  leaders.insert(0);
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& i = code[pc];
    const bool control = i.op == Opcode::kBra || i.op == Opcode::kBraPred ||
                         i.op == Opcode::kBarSync || i.op == Opcode::kExit;
    if (i.op == Opcode::kBra || i.op == Opcode::kBraPred) {
      if (i.target >= 0) leaders.insert(static_cast<u32>(i.target));
      if (i.op == Opcode::kBraPred && i.reconv >= 0) {
        leaders.insert(static_cast<u32>(i.reconv));
      }
    }
    if (control && pc + 1 < code.size()) leaders.insert(static_cast<u32>(pc + 1));
  }
  std::vector<u32> out(leaders.begin(), leaders.end());
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](u32 pc) { return pc >= code.size(); }),
            out.end());
  return out;
}

struct RegState {
  std::vector<AV> regs;
  bool mask_full = false;
  bool operator==(const RegState&) const = default;
};

class Analyzer {
 public:
  Analyzer(const vgpu::CompiledKernel& ker, const ShapeSpec& shape, bool assume_full_entry)
      : ker_(ker), shape_(shape), full_entry_(assume_full_entry) {
    leaders_ = CollectLeaders(ker.code);
    block_end_.resize(leaders_.size());
    for (std::size_t i = 0; i < leaders_.size(); ++i) {
      block_end_[i] = i + 1 < leaders_.size() ? leaders_[i + 1]
                                              : static_cast<u32>(ker.code.size());
    }
  }

  MaskFacts Run() {
    MaskFacts facts;
    facts.branch.assign(ker_.code.size(), BranchKind::kScan);
    facts.full_at.assign(ker_.code.size(), 0);
    if (ker_.code.empty() || leaders_.empty()) return facts;

    // Outer loop: the divergent-branch set and the exit flag only grow /
    // degrade, so this terminates within #branches + 2 restarts. Each inner
    // run is an optimistic fixpoint under the current assumptions.
    bool complete = false;
    for (int restart = 0; restart < 4 + 2 * static_cast<int>(ker_.code.size()); ++restart) {
      if (RunOnce()) {
        complete = true;
        break;
      }
    }
    if (!complete) return facts;  // never publish a half-converged run

    // Record the final classifications and full-block flags.
    for (std::size_t bi = 0; bi < leaders_.size(); ++bi) {
      const u32 leader = leaders_[bi];
      auto it = in_.find(leader);
      if (it == in_.end()) continue;  // unreachable
      if (full_entry_ && it->second.mask_full) {
        facts.full_at[leader] = 1;
        ++facts.full_blocks;
      }
      for (u32 pc = leader; pc < block_end_[bi]; ++pc) {
        if (ker_.code[pc].op != Opcode::kBraPred) continue;
        const BranchKind k = final_kind_.count(pc) ? final_kind_.at(pc) : BranchKind::kScan;
        facts.branch[pc] = k;
        if (k == BranchKind::kAlwaysTaken || k == BranchKind::kNeverTaken) {
          ++facts.folded_branches;
        } else if (k == BranchKind::kUniform) {
          ++facts.uniform_branches;
        }
      }
    }
    return facts;
  }

 private:
  std::size_t BlockOf(u32 pc) const {
    auto it = std::upper_bound(leaders_.begin(), leaders_.end(), pc);
    return static_cast<std::size_t>(it - leaders_.begin()) - 1;
  }

  // Static successors of block `bi`, for the region DFS.
  std::vector<u32> StaticSuccs(std::size_t bi) const {
    std::vector<u32> out;
    const u32 end = block_end_[bi];
    const Instr& last = ker_.code[end - 1];
    switch (last.op) {
      case Opcode::kBra:
        if (last.target >= 0) out.push_back(static_cast<u32>(last.target));
        break;
      case Opcode::kBraPred:
        if (last.target >= 0) out.push_back(static_cast<u32>(last.target));
        if (end < ker_.code.size()) out.push_back(end);
        break;
      case Opcode::kExit:
        break;
      default:  // BarSync or plain fallthrough
        if (end < ker_.code.size()) out.push_back(end);
        break;
    }
    return out;
  }

  // Recompute divergent-region membership and written-register sets from the
  // current scan set. Regions are per reconvergence pc.
  void RebuildRegions() {
    region_of_.clear();
    written_at_.clear();
    scan_reconvs_.clear();
    for (const auto& [pc, reconv] : scan_branches_) {
      if (reconv < 0) continue;
      const u32 r = static_cast<u32>(reconv);
      scan_reconvs_.insert(r);
      std::vector<u32> stack;
      const std::size_t bi = BlockOf(pc);
      const u32 end = block_end_[bi];
      if (ker_.code[pc].target >= 0) stack.push_back(static_cast<u32>(ker_.code[pc].target));
      if (end < ker_.code.size()) stack.push_back(end);
      std::set<u32>& region = region_of_[r];
      while (!stack.empty()) {
        const u32 p = stack.back();
        stack.pop_back();
        if (p == r || p >= ker_.code.size()) continue;
        const u32 leader = leaders_[BlockOf(p)];
        if (!region.insert(leader).second) continue;
        const std::size_t mbi = BlockOf(leader);
        for (u32 q = leader; q < block_end_[mbi]; ++q) {
          if (ker_.code[q].dst >= 0) written_at_[r].insert(ker_.code[q].dst);
        }
        for (u32 s : StaticSuccs(mbi)) stack.push_back(s);
      }
    }
  }

  AV OperandAV(const RegState& st, const Operand& o) const {
    if (o.is_imm()) return Const(o.imm);
    if (o.is_reg() && o.reg >= 0 && static_cast<std::size_t>(o.reg) < st.regs.size()) {
      return st.regs[o.reg];
    }
    return Top();
  }

  AV EvalSreg(SpecialReg sr) const {
    const unsigned nthreads = shape_.threads_per_block();
    const unsigned nwarps = shape_.warps_per_block(32);
    switch (sr) {
      case SpecialReg::kTidX: return Ranged(0, static_cast<i64>(shape_.block_x) - 1);
      case SpecialReg::kTidY: return Ranged(0, static_cast<i64>(shape_.block_y) - 1);
      case SpecialReg::kTidZ: return Ranged(0, static_cast<i64>(shape_.block_z) - 1);
      case SpecialReg::kNtidX: return Const(shape_.block_x);
      case SpecialReg::kNtidY: return Const(shape_.block_y);
      case SpecialReg::kNtidZ: return Const(shape_.block_z);
      case SpecialReg::kCtaidX:
        return Ranged(0, static_cast<i64>(shape_.grid_x) - 1, true,
                      kUidSreg | static_cast<u64>(sr));
      case SpecialReg::kCtaidY:
        return Ranged(0, static_cast<i64>(shape_.grid_y) - 1, true,
                      kUidSreg | static_cast<u64>(sr));
      case SpecialReg::kCtaidZ:
        return Ranged(0, static_cast<i64>(shape_.grid_z) - 1, true,
                      kUidSreg | static_cast<u64>(sr));
      case SpecialReg::kNctaidX: return Const(shape_.grid_x);
      case SpecialReg::kNctaidY: return Const(shape_.grid_y);
      case SpecialReg::kNctaidZ: return Const(shape_.grid_z);
      case SpecialReg::kLaneId: return Ranged(0, 31);
      case SpecialReg::kWarpId:
        // lb is a multiple of the (gated) warp size 32, so (lb + l) / 32 is
        // per-warp constant.
        return Ranged(0, static_cast<i64>(nwarps) - 1, true,
                      kUidSreg | static_cast<u64>(sr));
    }
    (void)nthreads;
    return Top();
  }

  AV EvalSetp(u32 pc, const Instr& i, const AV& a, const AV& b) const {
    if (a.is_const && b.is_const && i.type != Type::kF32 && i.type != Type::kF64) {
      return Const(CmpConst(i.cmp, i.type, a.cval, b.cval) ? 1 : 0);
    }
    const auto ra = CmpRange(i.type, a);
    const auto rb = CmpRange(i.type, b);
    if (ra && rb) {
      const Tri t = CmpIntervals(i.cmp, ra->first, ra->second, rb->first, rb->second);
      if (t == Tri::kTrue) return Const(1);
      if (t == Tri::kFalse) return Const(0);
    }
    AV r = Ranged(0, 1);  // predicates are always 0/1
    if (a.uniform && b.uniform) {
      r.uniform = true;
      r.uid = kUidDef | pc;
    }
    return r;
  }

  AV EvalCvt(u32 pc, const Instr& i, const AV& a) const {
    const Type dt = i.type, st = i.type2;
    const bool int_dst = vgpu::IsIntType(dt);
    const bool int_src = vgpu::IsIntType(st) || st == Type::kPred;
    if (int_dst && int_src) {
      if (a.is_const) {
        i64 sv;
        if (st == Type::kI32) sv = vgpu::DecodeI32(a.cval);
        else if (st == Type::kU32) sv = static_cast<i64>(static_cast<u32>(a.cval));
        else sv = static_cast<i64>(a.cval);
        u64 out;
        if (dt == Type::kI32) out = vgpu::EncodeI32(static_cast<i32>(sv));
        else if (dt == Type::kU32) out = static_cast<u32>(sv);
        else out = static_cast<u64>(sv);
        return Const(out);
      }
      AV r = Top();
      if (const auto ra = RangeOf(a)) {
        // Domain values pass through every int->int conversion unchanged.
        r = Ranged(ra->first, ra->second);
      }
      if (a.uniform) {
        r.uniform = true;
        r.uid = kUidDef | pc;
      }
      return r;
    }
    // Float-involved conversions: only uniformity survives (deterministic).
    if (a.uniform) return UniformVal(kUidDef | pc);
    return Top();
  }

  AV EvalAlu(u32 pc, const Instr& i, const RegState& st) const {
    const AV a = OperandAV(st, i.a);
    const AV b = OperandAV(st, i.b);
    const AV c = OperandAV(st, i.c);
    const bool is_float = i.type == Type::kF32 || i.type == Type::kF64;
    const bool have_b = !i.b.is_none();
    const bool have_c = !i.c.is_none();
    if (!is_float && a.is_const && (!have_b || b.is_const) && (!have_c || c.is_const)) {
      u64 out;
      if (FoldInt(i.op, i.type, a.cval, b.cval, c.cval, &out)) return Const(out);
    }
    AV r = Top();
    if (!is_float && i.type != Type::kPred) {
      if (const auto rr = RangeArith(i.op, a, b, c)) {
        r.ranged = true;
        r.lo = rr->first;
        r.hi = rr->second;
      }
    }
    const bool operands_uniform =
        a.uniform && (!have_b || b.uniform) && (!have_c || c.uniform);
    if (operands_uniform) {
      r.uniform = true;
      r.uid = kUidDef | pc;
    }
    return r;
  }

  // Classify a bra.pred under the current state. Branches already forced
  // divergent stay divergent (re-proving them would change edge semantics
  // mid-run).
  BranchKind Classify(u32 pc, const Instr& i, const RegState& st) const {
    if (scan_branches_.count(pc)) return BranchKind::kScan;
    const AV p = OperandAV(st, i.a);
    if (p.is_const) {
      const bool t = (p.cval != 0) != i.neg;
      return t ? BranchKind::kAlwaysTaken : BranchKind::kNeverTaken;
    }
    if (p.ranged && p.lo >= 1) {
      return i.neg ? BranchKind::kNeverTaken : BranchKind::kAlwaysTaken;
    }
    if (p.uniform) return BranchKind::kUniform;
    return BranchKind::kScan;
  }

  void JoinInto(u32 target, RegState incoming, bool divergent_entry) {
    const u32 tl = leaders_[BlockOf(target)];
    if (divergent_entry) {
      incoming.mask_full = restore_full_.count(tl) ? restore_full_.at(tl) && exits_ok_
                                                   : exits_ok_;
      if (const auto it = written_at_.find(tl); it != written_at_.end()) {
        for (const i32 r : it->second) {
          if (r >= 0 && static_cast<std::size_t>(r) < incoming.regs.size()) {
            AV& av = incoming.regs[r];
            av.is_const = false;
            av.uniform = false;  // lanes merge with different write histories
          }
        }
      }
    }
    auto [it, fresh] = in_.emplace(tl, incoming);
    if (fresh) {
      work_.push_back(tl);
      return;
    }
    RegState& cur = it->second;
    RegState joined = cur;
    joined.mask_full = cur.mask_full && incoming.mask_full;
    const int jc = ++join_count_[tl];
    for (std::size_t r = 0; r < joined.regs.size(); ++r) {
      AV j = JoinUniform(cur.regs[r], incoming.regs[r],
                         kUidJoin | (static_cast<u64>(tl) << 20) | r);
      // Widen: after a few joins, a still-growing interval (a loop counter)
      // is dropped instead of crawling toward the domain bound.
      if (jc > 4 && j.ranged && cur.regs[r].ranged &&
          (j.lo < cur.regs[r].lo || j.hi > cur.regs[r].hi)) {
        j.ranged = false;
        if (j.is_const) j = Const(j.cval);
      }
      joined.regs[r] = j;
    }
    if (!(joined == cur)) {
      cur = joined;
      work_.push_back(tl);
    }
  }

  // One optimistic fixpoint run. Returns true if the run completed under the
  // current assumptions, false if an assumption was invalidated (caller
  // restarts with the degraded assumption set).
  bool RunOnce() {
    RebuildRegions();
    in_.clear();
    join_count_.clear();
    restore_full_.clear();
    final_kind_.clear();
    work_.clear();

    RegState entry;
    entry.regs.assign(static_cast<std::size_t>(std::max(ker_.num_vregs, 0)), Top());
    for (std::size_t p = 0; p < ker_.params.size() && p < entry.regs.size(); ++p) {
      entry.regs[p] = UniformVal(kUidParam | p);  // args are broadcast
    }
    entry.mask_full = full_entry_;
    in_.emplace(0u, entry);
    work_.push_back(0);

    // Bounded by the lattice height; the guard is just a backstop.
    const std::size_t max_steps = 64 * (leaders_.size() + 4) * (leaders_.size() + 4);
    std::size_t steps = 0;
    while (!work_.empty()) {
      if (++steps > max_steps) {
        // Backstop against a non-converging lattice bug: drop every fact
        // rather than publish an optimistic half-fixpoint.
        in_.clear();
        final_kind_.clear();
        return true;
      }
      const u32 leader = work_.back();
      work_.pop_back();
      RegState st = in_.at(leader);
      const std::size_t bi = BlockOf(leader);
      const u32 end = block_end_[bi];
      bool closed = false;
      for (u32 pc = leader; pc < end && !closed; ++pc) {
        const Instr& i = ker_.code[pc];
        switch (i.op) {
          case Opcode::kBra:
            if (i.target >= 0) JoinInto(static_cast<u32>(i.target), st, IsDivergentEntry(leader, static_cast<u32>(i.target)));
            closed = true;
            break;
          case Opcode::kBraPred: {
            const BranchKind kind = Classify(pc, i, st);
            final_kind_[pc] = kind;
            if (kind == BranchKind::kScan && !scan_branches_.count(pc)) {
              // Optimism invalidated: this branch needs divergent semantics.
              scan_branches_[pc] = i.reconv;
              return false;
            }
            if (kind == BranchKind::kScan) {
              // Divergent: arms run with a possibly partial mask; the
              // reconvergence point restores the branch-point mask unless an
              // exit may have retired lanes.
              if (i.reconv >= 0) {
                const u32 r = static_cast<u32>(i.reconv);
                const u32 rl = leaders_[BlockOf(r)];
                auto [rit, rf] = restore_full_.emplace(rl, st.mask_full);
                if (!rf && rit->second && !st.mask_full) {
                  rit->second = false;
                  if (auto sit = in_.find(rl); sit != in_.end() && sit->second.mask_full) {
                    sit->second.mask_full = false;
                    work_.push_back(rl);
                  }
                }
              }
              RegState arm = st;
              arm.mask_full = false;
              if (i.target >= 0) {
                JoinInto(static_cast<u32>(i.target), arm,
                         IsDivergentEntry(leader, static_cast<u32>(i.target)));
              }
              if (end < ker_.code.size()) {
                JoinInto(end, arm, IsDivergentEntry(leader, end));
              }
            } else if (kind == BranchKind::kAlwaysTaken) {
              if (i.target >= 0) {
                JoinInto(static_cast<u32>(i.target), st,
                         IsDivergentEntry(leader, static_cast<u32>(i.target)));
              }
            } else if (kind == BranchKind::kNeverTaken) {
              if (end < ker_.code.size()) JoinInto(end, st, IsDivergentEntry(leader, end));
            } else {  // kUniform: both ways, mask intact, no push
              if (i.target >= 0) {
                JoinInto(static_cast<u32>(i.target), st,
                         IsDivergentEntry(leader, static_cast<u32>(i.target)));
              }
              if (end < ker_.code.size()) JoinInto(end, st, IsDivergentEntry(leader, end));
            }
            closed = true;
            break;
          }
          case Opcode::kBarSync:
            if (end < ker_.code.size()) JoinInto(end, st, IsDivergentEntry(leader, end));
            closed = true;
            break;
          case Opcode::kExit:
            if (!st.mask_full && exits_ok_) {
              // Lanes may retire under a partial mask: reconvergence points
              // can no longer assume the pushed mask survives intact.
              exits_ok_ = false;
              return false;
            }
            closed = true;
            break;
          default: {
            if (i.dst >= 0 && static_cast<std::size_t>(i.dst) < st.regs.size()) {
              AV dv = Top();
              switch (i.op) {
                case Opcode::kNop: dv = st.regs[i.dst]; break;
                case Opcode::kMov: dv = OperandAV(st, i.a); break;
                case Opcode::kSreg:
                  dv = EvalSreg(static_cast<SpecialReg>(i.a.imm));
                  break;
                case Opcode::kSetp:
                  dv = EvalSetp(pc, i, OperandAV(st, i.a), OperandAV(st, i.b));
                  break;
                case Opcode::kSel: {
                  const AV a = OperandAV(st, i.a);
                  const AV b = OperandAV(st, i.b);
                  const AV c = OperandAV(st, i.c);
                  if (c.is_const) {
                    dv = c.cval ? a : b;
                  } else {
                    dv = JoinUniform(a, b, kUidDef | pc);
                    dv.uniform = a.uniform && b.uniform && c.uniform;
                    if (dv.uniform) dv.uid = kUidDef | pc;
                    dv.is_const = false;
                  }
                  break;
                }
                case Opcode::kCvt: dv = EvalCvt(pc, i, OperandAV(st, i.a)); break;
                case Opcode::kLd:
                case Opcode::kAtomAdd:
                case Opcode::kAtomMin:
                case Opcode::kAtomMax:
                case Opcode::kAtomExch:
                case Opcode::kAtomCas:
                case Opcode::kTex2D:
                case Opcode::kTex1D:
                  dv = Top();
                  break;
                default: dv = EvalAlu(pc, i, st); break;
              }
              st.regs[i.dst] = dv;
            }
            break;
          }
        }
      }
      if (!closed) {
        // Fell off the block (next leader) or off the end of the kernel
        // (implicit exit, same retirement rule as kExit).
        if (end < ker_.code.size()) {
          JoinInto(end, st, IsDivergentEntry(leader, end));
        } else if (!st.mask_full && exits_ok_) {
          exits_ok_ = false;
          return false;
        }
      }
    }
    return true;
  }

  bool IsDivergentEntry(u32 from_leader, u32 target) const {
    const u32 tl = leaders_[BlockOf(target)];
    if (!scan_reconvs_.count(tl)) return false;
    // Entries into a divergent reconvergence pc happen via the pop-restore
    // path both from inside the region and from the owning branch itself.
    if (const auto it = region_of_.find(tl); it != region_of_.end()) {
      if (it->second.count(from_leader)) return true;
    }
    for (const auto& [pc, reconv] : scan_branches_) {
      if (reconv >= 0 && leaders_[BlockOf(static_cast<u32>(reconv))] == tl &&
          leaders_[BlockOf(pc)] == from_leader) {
        return true;
      }
    }
    return false;
  }

  const vgpu::CompiledKernel& ker_;
  const ShapeSpec& shape_;
  const bool full_entry_;

  std::vector<u32> leaders_;
  std::vector<u32> block_end_;

  // Degrading assumption set, preserved across restarts.
  std::map<u32, std::int32_t> scan_branches_;  // branch pc -> reconv pc
  bool exits_ok_ = true;

  // Per-run structures.
  std::set<u32> scan_reconvs_;
  std::map<u32, std::set<u32>> region_of_;    // reconv leader -> member leaders
  std::map<u32, std::set<i32>> written_at_;   // reconv leader -> regs written in region
  std::map<u32, RegState> in_;
  std::map<u32, int> join_count_;
  std::map<u32, bool> restore_full_;
  std::map<u32, BranchKind> final_kind_;
  std::vector<u32> work_;
};

}  // namespace

MaskFacts AnalyzeKernelMasks(const vgpu::CompiledKernel& ker, const ShapeSpec& shape,
                             bool assume_full_entry) {
  Analyzer az(ker, shape, assume_full_entry);
  return az.Run();
}

}  // namespace kspec::native
