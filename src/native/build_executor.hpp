// Background native-tier promotion riding the serve pipeline.
//
// NativeBuildExecutor is a serve::CompileExecutor whose flights, after the
// ordinary compile-through-the-cache step, also make the module's native
// artifact ready in an attached NativeEngine. Attach it to a Context with
// set_async_service and the standard serve flow becomes the promotion path:
// submit -> decoded module available almost immediately (the decoded tier
// serves traffic) -> the same worker keeps going and builds / loads the
// shared object -> subsequent kAuto launches are served natively.
//
// Everything CompileExecutor guarantees — coalescing, bounded queue,
// deadlines, Drain/Shutdown — is inherited; the native build adds wall time
// to the flight but never blocks a launch.
#pragma once

#include <memory>

#include "native/engine.hpp"
#include "serve/compile_executor.hpp"

namespace kspec::native {

class NativeBuildExecutor : public serve::CompileExecutor {
 public:
  // `engine` is not owned and must outlive the executor (and every flight).
  explicit NativeBuildExecutor(NativeEngine* engine, serve::ExecutorOptions options = {});
  ~NativeBuildExecutor() override;

 protected:
  std::shared_ptr<vcuda::Module> ExecuteFlight(vcuda::Context& ctx,
                                               const vcuda::CompileRequest& req) override;

 private:
  NativeEngine* engine_;
};

}  // namespace kspec::native
