#include "gpupf/pipeline.hpp"

#include <chrono>
#include <cstring>
#include <fstream>

#include "launch/spec_builder.hpp"
#include "launch/transfer_model.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace kspec::gpupf {

namespace {

// Binds a parameter's current value onto the define set. Stringification is
// the launch layer's: SpecBuilder is the single implementation of -D macro
// formatting across gpupf and the app drivers.
void BindParamDefine(launch::SpecBuilder& spec, const std::string& macro, const Param* p) {
  if (auto* i = dynamic_cast<const IntParam*>(p)) {
    spec.Value(macro, i->value());
  } else if (auto* b = dynamic_cast<const BoolParam*>(p)) {
    spec.Value(macro, b->value());
  } else if (auto* f = dynamic_cast<const FloatParam*>(p)) {
    spec.Value(macro, f->value());
  } else if (auto* ptr = dynamic_cast<const PointerParam*>(p)) {
    spec.Pointer(macro, ptr->value());
  } else if (auto* s = dynamic_cast<const StepParam*>(p)) {
    spec.Value(macro, s->value());
  } else {
    throw PipelineError("parameter '" + p->name() + "' cannot be bound to a #define");
  }
}

struct ResolvedEndpoint {
  MemoryRes* mem = nullptr;
  std::uint64_t offset = 0;  // byte offset (subsets)
  std::uint64_t bytes = 0;
};

ResolvedEndpoint Resolve(const CopyAction::Endpoint& ep, std::uint64_t iter) {
  ResolvedEndpoint out;
  if (std::holds_alternative<MemoryRes*>(ep)) {
    out.mem = std::get<MemoryRes*>(ep);
    out.bytes = out.mem->extent().bytes();
  } else {
    SubsetRes* s = std::get<SubsetRes*>(ep);
    out.mem = s->base();
    out.offset = s->OffsetBytesAt(iter);
    out.bytes = s->window().bytes();
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Resources
// ---------------------------------------------------------------------------

bool ModuleRes::Refresh(Pipeline& p) {
  // Swap in a finished background re-specialization first; Refresh runs every
  // pipeline iteration, so this is also the polling point.
  bool swapped = false;
  if (pending_.valid() &&
      pending_.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    try {
      if (auto mod = pending_.get()) {
        module_ = std::move(mod);
        swapped = true;
        KSPEC_LOG_INFO << "gpupf: swapped in background respecialization of '" << name() << "'";
      }
    } catch (const std::exception& e) {
      KSPEC_LOG_WARN << "gpupf: background respecialization of '" << name() << "' failed ("
                     << e.what() << ") — keeping the previous build";
    }
    pending_ = {};
  }

  std::vector<const Param*> deps;
  deps.reserve(bindings_.size());
  for (const auto& [macro, param] : bindings_) deps.push_back(param);
  if (!DepsChanged(deps)) return swapped;

  launch::SpecBuilder spec;  // gpupf modules always specialize; duplicate
                             // fixed-define/binding macros are rejected
  for (const auto& [macro, text] : fixed_defines_) spec.Value(macro, text);
  for (const auto& [macro, param] : bindings_) BindParamDefine(spec, macro, param);
  kcc::CompileOptions opts = spec.Build();

  if (async_refresh_ && module_ && p.ctx().async_service()) {
    vcuda::SubmitResult r = p.ctx().LoadModuleAsync(source_, opts);
    if (r.ok()) {
      // Supersedes any older still-running flight; the abandoned result just
      // lands in the context's cache.
      pending_ = r.future;
      KSPEC_LOG_INFO << "gpupf: scheduled respecialization of '" << name() << "' ("
                     << kcc::DefinesToString(opts.defines) << ") — serving previous build";
      return swapped;
    }
    // Rejected (service saturated): fall through to the blocking path rather
    // than run the stale build for an unbounded number of refreshes.
  }
  module_ = p.ctx().LoadModule(source_, opts);
  KSPEC_LOG_INFO << "gpupf: refreshed module '" << name() << "' ("
                 << kcc::DefinesToString(opts.defines) << ")";
  return true;
}

bool MemoryRes::Refresh(Pipeline& p) {
  if (!DepsChanged({extent_})) return false;
  const std::uint64_t bytes = extent_->bytes();
  switch (loc_) {
    case Loc::kHost:
      host_.assign(bytes, 0);
      break;
    case Loc::kGlobal:
      if (dev_ != 0) p.ctx().Free(dev_);
      owner_ = &p.ctx();
      dev_ = p.ctx().Malloc(bytes);
      dev_bytes_ = bytes;
      p.ctx().Memset(dev_, 0, bytes);
      break;
    case Loc::kConstant:
      break;  // storage lives in the module
  }
  KSPEC_LOG_INFO << "gpupf: refreshed memory '" << name() << "' (" << extent_->Describe() << ")";
  return true;
}

bool TextureRes::Refresh(Pipeline&) {
  bool stale = module_->generation() != bound_module_gen_ ||
               source_->generation() != bound_source_gen_ ||
               dims_->version() != bound_dims_version_;
  if (!stale) return false;
  module_->module().BindTexture(texture_, source_->dev_ptr(),
                                static_cast<int>(dims_->x()),
                                static_cast<int>(std::max<std::uint64_t>(dims_->y(), 1)));
  bound_module_gen_ = module_->generation();
  bound_source_gen_ = source_->generation();
  bound_dims_version_ = dims_->version();
  KSPEC_LOG_INFO << "gpupf: bound texture '" << texture_ << "' in '" << name() << "'";
  return true;
}

// ---------------------------------------------------------------------------
// Actions
// ---------------------------------------------------------------------------

void CopyAction::Execute(Pipeline& p, std::uint64_t iter) {
  WallTimer wall;
  ResolvedEndpoint src = Resolve(src_, iter);
  ResolvedEndpoint dst = Resolve(dst_, iter);
  std::uint64_t bytes = std::min(src.bytes, dst.bytes);
  using Loc = MemoryRes::Loc;
  Loc sl = src.mem->loc(), dl = dst.mem->loc();

  if (sl == Loc::kHost && dl == Loc::kGlobal) {
    p.ctx().MemcpyHtoD(dst.mem->dev_ptr() + dst.offset, src.mem->host().data() + src.offset,
                       bytes);
    timing_.sim_millis += p.HtoDMillis(bytes);
  } else if (sl == Loc::kGlobal && dl == Loc::kHost) {
    p.ctx().MemcpyDtoH(dst.mem->host().data() + dst.offset, src.mem->dev_ptr() + src.offset,
                       bytes);
    timing_.sim_millis += p.HtoDMillis(bytes);
  } else if (sl == Loc::kGlobal && dl == Loc::kGlobal) {
    auto& mem = p.ctx().memory();
    std::memmove(mem.Access(dst.mem->dev_ptr() + dst.offset, bytes),
                 mem.Access(src.mem->dev_ptr() + src.offset, bytes), bytes);
    timing_.sim_millis += launch::TransferModel{}.DtoDMillis(bytes);
  } else if (sl == Loc::kHost && dl == Loc::kHost) {
    std::memmove(dst.mem->host().data() + dst.offset, src.mem->host().data() + src.offset, bytes);
  } else if (dl == Loc::kConstant) {
    std::vector<unsigned char> staging(bytes);
    if (sl == Loc::kHost) {
      std::memcpy(staging.data(), src.mem->host().data() + src.offset, bytes);
    } else {
      p.ctx().MemcpyDtoH(staging.data(), src.mem->dev_ptr() + src.offset, bytes);
    }
    dst.mem->module_res()->module().SetConstant(dst.mem->constant_name(), staging.data(), bytes);
    timing_.sim_millis += p.HtoDMillis(bytes);
  } else {
    throw PipelineError("unsupported copy endpoints in action '" + name() + "'");
  }
  ++timing_.invocations;
  timing_.wall_millis += wall.ElapsedMillis();
}

void KernelExecAction::Execute(Pipeline& p, std::uint64_t iter) {
  WallTimer wall;
  const vgpu::CompiledKernel& k = kernel_->kernel();
  if (args_.size() != k.params.size()) {
    throw PipelineError(Format("action '%s': kernel %s takes %zu args, %zu bound",
                               name().c_str(), k.name.c_str(), k.params.size(), args_.size()));
  }
  vcuda::ArgPack pack;
  for (std::size_t i = 0; i < args_.size(); ++i) {
    vgpu::Type want = k.params[i].type;
    const Arg& a = args_[i];
    if (std::holds_alternative<const IntParam*>(a)) {
      std::int64_t v = std::get<const IntParam*>(a)->value();
      switch (want) {
        case vgpu::Type::kI32: pack.Int(static_cast<std::int32_t>(v)); break;
        case vgpu::Type::kU32: pack.Uint(static_cast<std::uint32_t>(v)); break;
        case vgpu::Type::kI64: pack.Long(v); break;
        case vgpu::Type::kU64: pack.Ulong(static_cast<std::uint64_t>(v)); break;
        default:
          throw PipelineError(Format("action '%s': integer parameter bound to %s argument",
                                     name().c_str(), vgpu::TypeName(want)));
      }
    } else if (std::holds_alternative<const FloatParam*>(a)) {
      double v = std::get<const FloatParam*>(a)->value();
      if (want == vgpu::Type::kF32) pack.Float(static_cast<float>(v));
      else if (want == vgpu::Type::kF64) pack.Double(v);
      else throw PipelineError("float parameter bound to non-float kernel argument");
    } else if (std::holds_alternative<const PointerParam*>(a)) {
      pack.Ptr(std::get<const PointerParam*>(a)->value());
    } else if (std::holds_alternative<MemoryRes*>(a)) {
      pack.Ptr(std::get<MemoryRes*>(a)->dev_ptr());
    } else {
      SubsetRes* s = std::get<SubsetRes*>(a);
      pack.Ptr(s->base()->dev_ptr() + s->OffsetBytesAt(iter));
    }
  }
  unsigned dyn_smem = dynamic_smem_ ? static_cast<unsigned>(dynamic_smem_->value()) : 0;
  last_stats_ = p.ctx().Launch(kernel_->module_res()->module(), kernel_->kernel_name(),
                               grid_->value(), block_->value(), pack, dyn_smem);
  timing_.sim_millis += last_stats_.sim_millis;
  ++timing_.invocations;
  timing_.wall_millis += wall.ElapsedMillis();
}

void UserFnAction::Execute(Pipeline& p, std::uint64_t iter) {
  WallTimer wall;
  fn_(p, iter);
  ++timing_.invocations;
  timing_.wall_millis += wall.ElapsedMillis();
}

void FileIOAction::Execute(Pipeline&, std::uint64_t) {
  WallTimer wall;
  auto& buf = mem_->host();
  if (dir_ == Dir::kRead) {
    std::ifstream in(path_, std::ios::binary);
    if (!in) throw PipelineError("cannot open '" + path_ + "' for reading");
    in.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
  } else {
    std::ofstream out(path_, std::ios::binary);
    if (!out) throw PipelineError("cannot open '" + path_ + "' for writing");
    out.write(reinterpret_cast<const char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
  }
  ++timing_.invocations;
  timing_.wall_millis += wall.ElapsedMillis();
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

Pipeline::~Pipeline() {
  for (auto& r : resources_) {
    if (auto* m = dynamic_cast<MemoryRes*>(r.get())) {
      if (m->loc() == MemoryRes::Loc::kGlobal && m->dev_ != 0 && m->owner_) {
        m->owner_->Free(m->dev_);
      }
    }
  }
}

IntParam* Pipeline::AddInt(std::string name, std::int64_t v) {
  params_.push_back(std::make_unique<IntParam>(std::move(name), v));
  return static_cast<IntParam*>(params_.back().get());
}
FloatParam* Pipeline::AddFloat(std::string name, double v) {
  params_.push_back(std::make_unique<FloatParam>(std::move(name), v));
  return static_cast<FloatParam*>(params_.back().get());
}
BoolParam* Pipeline::AddBool(std::string name, bool v) {
  params_.push_back(std::make_unique<BoolParam>(std::move(name), v));
  return static_cast<BoolParam*>(params_.back().get());
}
TypeParam* Pipeline::AddType(std::string name, vgpu::Type t) {
  params_.push_back(std::make_unique<TypeParam>(std::move(name), t));
  return static_cast<TypeParam*>(params_.back().get());
}
TripletParam* Pipeline::AddTriplet(std::string name, vgpu::Dim3 v) {
  params_.push_back(std::make_unique<TripletParam>(std::move(name), v));
  return static_cast<TripletParam*>(params_.back().get());
}
PairParam* Pipeline::AddPair(std::string name, std::int64_t a, std::int64_t b) {
  params_.push_back(std::make_unique<PairParam>(std::move(name), a, b));
  return static_cast<PairParam*>(params_.back().get());
}
PointerParam* Pipeline::AddPointer(std::string name, vgpu::DevPtr p) {
  params_.push_back(std::make_unique<PointerParam>(std::move(name), p));
  return static_cast<PointerParam*>(params_.back().get());
}
ExtentParam* Pipeline::AddExtent(std::string name, std::size_t elem, std::uint64_t x,
                                 std::uint64_t y, std::uint64_t z) {
  params_.push_back(std::make_unique<ExtentParam>(std::move(name), elem, x, y, z));
  return static_cast<ExtentParam*>(params_.back().get());
}
ScheduleParam* Pipeline::AddSchedule(std::string name, std::uint64_t period, std::uint64_t delay) {
  params_.push_back(std::make_unique<ScheduleParam>(std::move(name), period, delay));
  return static_cast<ScheduleParam*>(params_.back().get());
}
StepParam* Pipeline::AddStep(std::string name, std::int64_t lo, std::int64_t hi,
                             std::int64_t stride) {
  params_.push_back(std::make_unique<StepParam>(std::move(name), lo, hi, stride));
  return static_cast<StepParam*>(params_.back().get());
}

ModuleRes* Pipeline::AddModule(std::string name, std::string source) {
  resources_.push_back(std::make_unique<ModuleRes>(std::move(name), std::move(source)));
  needs_refresh_ = true;
  return static_cast<ModuleRes*>(resources_.back().get());
}
KernelRes* Pipeline::AddKernel(std::string name, ModuleRes* module, std::string kernel_name) {
  resources_.push_back(std::make_unique<KernelRes>(std::move(name), module, std::move(kernel_name)));
  return static_cast<KernelRes*>(resources_.back().get());
}
MemoryRes* Pipeline::AddHostMemory(std::string name, const ExtentParam* extent) {
  resources_.push_back(
      std::make_unique<MemoryRes>(std::move(name), MemoryRes::Loc::kHost, extent));
  needs_refresh_ = true;
  return static_cast<MemoryRes*>(resources_.back().get());
}
MemoryRes* Pipeline::AddGlobalMemory(std::string name, const ExtentParam* extent) {
  resources_.push_back(
      std::make_unique<MemoryRes>(std::move(name), MemoryRes::Loc::kGlobal, extent));
  needs_refresh_ = true;
  return static_cast<MemoryRes*>(resources_.back().get());
}
MemoryRes* Pipeline::AddConstantMemory(std::string name, const ExtentParam* extent,
                                       ModuleRes* module, std::string constant_name) {
  resources_.push_back(std::make_unique<MemoryRes>(std::move(name), MemoryRes::Loc::kConstant,
                                                   extent, module, std::move(constant_name)));
  return static_cast<MemoryRes*>(resources_.back().get());
}
SubsetRes* Pipeline::AddSubset(std::string name, MemoryRes* base, const ExtentParam* window,
                               std::int64_t stride_elems, std::uint64_t reset_period) {
  resources_.push_back(
      std::make_unique<SubsetRes>(std::move(name), base, window, stride_elems, reset_period));
  return static_cast<SubsetRes*>(resources_.back().get());
}
TextureRes* Pipeline::AddTexture(std::string name, ModuleRes* module, std::string texture_name,
                                 MemoryRes* source, const ExtentParam* dims) {
  resources_.push_back(std::make_unique<TextureRes>(std::move(name), module,
                                                    std::move(texture_name), source, dims));
  needs_refresh_ = true;
  return static_cast<TextureRes*>(resources_.back().get());
}

CopyAction* Pipeline::AddCopy(std::string name, const ScheduleParam* schedule,
                              CopyAction::Endpoint src, CopyAction::Endpoint dst) {
  actions_.push_back(std::make_unique<CopyAction>(std::move(name), schedule, src, dst));
  return static_cast<CopyAction*>(actions_.back().get());
}
KernelExecAction* Pipeline::AddKernelExec(std::string name, const ScheduleParam* schedule,
                                          KernelRes* kernel, const TripletParam* grid,
                                          const TripletParam* block,
                                          std::vector<KernelExecAction::Arg> args,
                                          const IntParam* dynamic_smem) {
  actions_.push_back(std::make_unique<KernelExecAction>(std::move(name), schedule, kernel, grid,
                                                        block, std::move(args), dynamic_smem));
  return static_cast<KernelExecAction*>(actions_.back().get());
}
UserFnAction* Pipeline::AddUserFn(std::string name, const ScheduleParam* schedule,
                                  std::function<void(Pipeline&, std::uint64_t)> fn) {
  actions_.push_back(std::make_unique<UserFnAction>(std::move(name), schedule, std::move(fn)));
  return static_cast<UserFnAction*>(actions_.back().get());
}
FileIOAction* Pipeline::AddFileIO(std::string name, const ScheduleParam* schedule, MemoryRes* mem,
                                  std::string path, FileIOAction::Dir dir) {
  actions_.push_back(
      std::make_unique<FileIOAction>(std::move(name), schedule, mem, std::move(path), dir));
  return static_cast<FileIOAction*>(actions_.back().get());
}

int Pipeline::Refresh() {
  int refreshed = 0;
  for (auto& r : resources_) {
    if (r->Refresh(*this)) {
      r->BumpGeneration();
      ++refreshed;
    }
  }
  needs_refresh_ = false;
  if (refreshed) {
    KSPEC_LOG_INFO << "gpupf: refresh complete, " << refreshed << " resource(s) updated";
  }
  return refreshed;
}

void Pipeline::Run(std::uint64_t iterations) {
  for (std::uint64_t n = 0; n < iterations; ++n) {
    Refresh();  // no-op when nothing changed
    for (auto& a : actions_) {
      if (a->FiresAt(iter_)) a->Execute(*this, iter_);
    }
    ++iter_;
  }
}

double Pipeline::TotalSimMillis() const {
  double total = 0;
  for (const auto& a : actions_) total += a->timing().sim_millis;
  return total;
}

void Pipeline::ResetTiming() {
  for (auto& a : actions_) a->ResetTiming();
}

std::string Pipeline::TimingReport() const {
  std::string out = "=== GPU-PF per-operation timing ===\n";
  for (const auto& a : actions_) {
    const ActionTiming& t = a->timing();
    out += Format("  %-28s invocations=%-6llu sim=%9.4f ms  wall=%9.4f ms\n", a->name().c_str(),
                  static_cast<unsigned long long>(t.invocations), t.sim_millis, t.wall_millis);
  }
  out += Format("  %-28s sim=%9.4f ms\n", "TOTAL", TotalSimMillis());
  return out;
}

double Pipeline::HtoDMillis(std::uint64_t bytes) const {
  // The shared analytic transfer model (launch/transfer_model.hpp).
  return launch::TransferModel{}.HtoDMillis(bytes);
}

}  // namespace kspec::gpupf
