// The GPU-PF pipeline: resources (Tables 4.2/4.3), actions (Table 4.4), and
// the specification / refresh / execution program phases (Section 4.4.1).
//
// A pipeline is *specified* once by instantiating parameters, resources, and
// actions through the factory methods. Nothing is allocated or compiled at
// specification time. The *refresh* phase (run automatically before the first
// execution and after any parameter change) re-derives exactly the resources
// whose parameter dependencies changed: modules whose bound defines changed
// are recompiled (kernel re-specialization), memory whose extent changed is
// reallocated. The *execution* phase runs the scheduled actions per pipeline
// iteration and accumulates per-action timing, printable in the style of the
// dissertation's Appendix G.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "gpupf/params.hpp"
#include "kcc/compiler.hpp"
#include "vcuda/vcuda.hpp"

namespace kspec::gpupf {

class Pipeline;

// ---------------------------------------------------------------------------
// Resources
// ---------------------------------------------------------------------------

class Resource {
 public:
  explicit Resource(std::string name) : name_(std::move(name)) {}
  virtual ~Resource() = default;
  const std::string& name() const { return name_; }

  // Re-derives the resource if any dependency changed. Returns true when work
  // was done (for the refresh log).
  virtual bool Refresh(Pipeline& p) = 0;

  // Bumped by the pipeline each time Refresh() reported work; downstream
  // resources (e.g. texture bindings onto a recompiled module) depend on it.
  std::uint64_t generation() const { return generation_; }
  void BumpGeneration() { ++generation_; }

 protected:
  // Version snapshot helper: true when any watched param changed since the
  // last call.
  bool DepsChanged(const std::vector<const Param*>& deps) {
    std::uint64_t sum = 0;
    for (const Param* d : deps) sum = sum * 1099511628211ull + d->version();
    if (sum == dep_snapshot_ && initialized_) return false;
    dep_snapshot_ = sum;
    initialized_ = true;
    return true;
  }

 private:
  std::string name_;
  std::uint64_t dep_snapshot_ = 0;
  std::uint64_t generation_ = 0;
  bool initialized_ = false;
};

// A Kernel-C module compiled at refresh time with -D values taken from bound
// parameters (the kernel-specialization automation of Section 4.4.1).
class ModuleRes : public Resource {
 public:
  ModuleRes(std::string name, std::string source) : Resource(std::move(name)), source_(std::move(source)) {}

  // Binds macro NAME to a parameter; the parameter's current value is
  // stringified into -D NAME=<value> at every refresh.
  void BindDefine(const std::string& macro, const Param* param) {
    bindings_.emplace_back(macro, param);
  }
  // Fixed define (not parameter-driven).
  void SetDefine(const std::string& macro, std::string value) {
    fixed_defines_[macro] = std::move(value);
  }

  // Opt-in non-blocking re-specialization. After the first (always blocking)
  // build, a parameter change schedules the recompile on the Context's
  // AsyncCompileService and keeps serving the previous build until the new
  // one is ready; the swap bumps the generation, so dependent resources
  // (texture bindings) re-derive then. Only enable this when running a few
  // iterations on the stale specialization is acceptable — i.e. the bound
  // defines are performance parameters, or the kernel also reads the values
  // from its run-time arguments (the Appendix B single-source pattern).
  void set_async_refresh(bool on) { async_refresh_ = on; }
  // True while a scheduled re-specialization has not been swapped in yet.
  bool respecialization_pending() const { return pending_.valid(); }

  bool Refresh(Pipeline& p) override;

  vcuda::Module& module() const {
    KSPEC_CHECK_MSG(module_ != nullptr, "module used before refresh");
    return *module_;
  }

 private:
  std::string source_;
  std::vector<std::pair<std::string, const Param*>> bindings_;
  std::map<std::string, std::string> fixed_defines_;
  std::shared_ptr<vcuda::Module> module_;
  bool async_refresh_ = false;
  vcuda::ModuleFuture pending_;
};

// A kernel within a module (Table 4.2).
class KernelRes : public Resource {
 public:
  KernelRes(std::string name, ModuleRes* module, std::string kernel_name)
      : Resource(std::move(name)), module_(module), kernel_(std::move(kernel_name)) {}

  bool Refresh(Pipeline&) override { return false; }  // module handles it

  ModuleRes* module_res() const { return module_; }
  const std::string& kernel_name() const { return kernel_; }
  const vgpu::CompiledKernel& kernel() const { return module_->module().GetKernel(kernel_); }

 private:
  ModuleRes* module_;
  std::string kernel_;
};

// Generic memory reference (Tables 4.2/4.3): host, device-global, or a
// module's constant array. A subset view is a separate resource below.
class MemoryRes : public Resource {
 public:
  enum class Loc { kHost, kGlobal, kConstant };

  MemoryRes(std::string name, Loc loc, const ExtentParam* extent, ModuleRes* module = nullptr,
            std::string constant_name = {})
      : Resource(std::move(name)),
        loc_(loc),
        extent_(extent),
        module_(module),
        constant_name_(std::move(constant_name)) {}

  bool Refresh(Pipeline& p) override;

  Loc loc() const { return loc_; }
  const ExtentParam& extent() const { return *extent_; }

  // Device address (global memory only).
  vgpu::DevPtr dev_ptr() const {
    KSPEC_CHECK_MSG(loc_ == Loc::kGlobal && dev_ != 0, "not a refreshed device allocation");
    return dev_;
  }
  // Host buffer (host memory only).
  std::vector<unsigned char>& host() {
    KSPEC_CHECK_MSG(loc_ == Loc::kHost, "not host memory");
    return host_;
  }
  const std::vector<unsigned char>& host() const {
    KSPEC_CHECK_MSG(loc_ == Loc::kHost, "not host memory");
    return host_;
  }
  ModuleRes* module_res() const { return module_; }
  const std::string& constant_name() const { return constant_name_; }

  template <typename T>
  std::span<T> host_span() {
    return {reinterpret_cast<T*>(host_.data()), host_.size() / sizeof(T)};
  }

 private:
  friend class Pipeline;
  Loc loc_;
  const ExtentParam* extent_;
  ModuleRes* module_;
  std::string constant_name_;
  vgpu::DevPtr dev_ = 0;
  std::uint64_t dev_bytes_ = 0;
  std::vector<unsigned char> host_;
  vcuda::Context* owner_ = nullptr;
};

// A texture reference (Table 4.2): binds a module's __texture to a global
// memory reference with the given 2D extent. Re-binds automatically whenever
// the module is re-specialized or the backing memory is reallocated.
class TextureRes : public Resource {
 public:
  TextureRes(std::string name, ModuleRes* module, std::string texture_name, MemoryRes* source,
             const ExtentParam* dims)
      : Resource(std::move(name)),
        module_(module),
        texture_(std::move(texture_name)),
        source_(source),
        dims_(dims) {}

  bool Refresh(Pipeline& p) override;

 private:
  ModuleRes* module_;
  std::string texture_;
  MemoryRes* source_;
  const ExtentParam* dims_;
  std::uint64_t bound_module_gen_ = ~0ull;
  std::uint64_t bound_source_gen_ = ~0ull;
  std::uint64_t bound_dims_version_ = 0;
};

// A moving window over another memory reference (Table 4.3 "Subset"): each
// pipeline iteration advances the element offset by `stride_elems`, wrapping
// every `reset_period` iterations. Usable wherever a full reference is.
class SubsetRes : public Resource {
 public:
  SubsetRes(std::string name, MemoryRes* base, const ExtentParam* window,
            std::int64_t stride_elems, std::uint64_t reset_period)
      : Resource(std::move(name)),
        base_(base),
        window_(window),
        stride_elems_(stride_elems),
        reset_period_(reset_period ? reset_period : 1) {}

  bool Refresh(Pipeline&) override { return false; }

  MemoryRes* base() const { return base_; }
  const ExtentParam& window() const { return *window_; }

  std::uint64_t OffsetBytesAt(std::uint64_t iter) const {
    std::uint64_t k = iter % reset_period_;
    return static_cast<std::uint64_t>(stride_elems_ * static_cast<std::int64_t>(k)) *
           window_->elem_size();
  }

 private:
  MemoryRes* base_;
  const ExtentParam* window_;
  std::int64_t stride_elems_;
  std::uint64_t reset_period_;
};

// ---------------------------------------------------------------------------
// Actions
// ---------------------------------------------------------------------------

struct ActionTiming {
  std::uint64_t invocations = 0;
  double sim_millis = 0;    // simulated device/transfer time
  double wall_millis = 0;   // host wall time (compilation, user functions)
};

class Action {
 public:
  Action(std::string name, const ScheduleParam* schedule)
      : name_(std::move(name)), schedule_(schedule) {}
  virtual ~Action() = default;

  const std::string& name() const { return name_; }
  bool FiresAt(std::uint64_t iter) const { return !schedule_ || schedule_->FiresAt(iter); }
  const ActionTiming& timing() const { return timing_; }
  void ResetTiming() { timing_ = {}; }

  virtual void Execute(Pipeline& p, std::uint64_t iter) = 0;

 protected:
  ActionTiming timing_;

 private:
  std::string name_;
  const ScheduleParam* schedule_;
};

// Any-to-any memory copy (Table 4.4): the endpoint kinds determine the
// transfer direction and its timing model.
class CopyAction : public Action {
 public:
  using Endpoint = std::variant<MemoryRes*, SubsetRes*>;
  CopyAction(std::string name, const ScheduleParam* schedule, Endpoint src, Endpoint dst)
      : Action(std::move(name), schedule), src_(src), dst_(dst) {}

  void Execute(Pipeline& p, std::uint64_t iter) override;

 private:
  Endpoint src_, dst_;
};

// Kernel launch (Table 4.4). Arguments are parameters or memory references,
// marshalled against the kernel's parameter list at execution time.
class KernelExecAction : public Action {
 public:
  using Arg = std::variant<const IntParam*, const FloatParam*, const PointerParam*, MemoryRes*,
                           SubsetRes*>;

  KernelExecAction(std::string name, const ScheduleParam* schedule, KernelRes* kernel,
                   const TripletParam* grid, const TripletParam* block,
                   std::vector<Arg> args, const IntParam* dynamic_smem = nullptr)
      : Action(std::move(name), schedule),
        kernel_(kernel),
        grid_(grid),
        block_(block),
        args_(std::move(args)),
        dynamic_smem_(dynamic_smem) {}

  void Execute(Pipeline& p, std::uint64_t iter) override;

  const vgpu::LaunchStats& last_stats() const { return last_stats_; }

 private:
  KernelRes* kernel_;
  const TripletParam* grid_;
  const TripletParam* block_;
  std::vector<Arg> args_;
  const IntParam* dynamic_smem_;
  vgpu::LaunchStats last_stats_;
};

// Arbitrary host callback (Table 4.4 "User function").
class UserFnAction : public Action {
 public:
  UserFnAction(std::string name, const ScheduleParam* schedule,
               std::function<void(Pipeline&, std::uint64_t)> fn)
      : Action(std::move(name), schedule), fn_(std::move(fn)) {}

  void Execute(Pipeline& p, std::uint64_t iter) override;

 private:
  std::function<void(Pipeline&, std::uint64_t)> fn_;
};

// Binary file input/output (Table 4.4 "File I/O") against a host memory
// reference.
class FileIOAction : public Action {
 public:
  enum class Dir { kRead, kWrite };
  FileIOAction(std::string name, const ScheduleParam* schedule, MemoryRes* mem, std::string path,
               Dir dir)
      : Action(std::move(name), schedule), mem_(mem), path_(std::move(path)), dir_(dir) {}

  void Execute(Pipeline& p, std::uint64_t iter) override;

 private:
  MemoryRes* mem_;
  std::string path_;
  Dir dir_;
};

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

class Pipeline {
 public:
  explicit Pipeline(vcuda::Context* ctx) : ctx_(ctx) {}
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  vcuda::Context& ctx() { return *ctx_; }

  // ---- specification phase: parameters ----
  IntParam* AddInt(std::string name, std::int64_t v);
  FloatParam* AddFloat(std::string name, double v);
  BoolParam* AddBool(std::string name, bool v);
  TypeParam* AddType(std::string name, vgpu::Type t);
  TripletParam* AddTriplet(std::string name, vgpu::Dim3 v);
  PairParam* AddPair(std::string name, std::int64_t a, std::int64_t b);
  PointerParam* AddPointer(std::string name, vgpu::DevPtr p);
  ExtentParam* AddExtent(std::string name, std::size_t elem, std::uint64_t x, std::uint64_t y = 1,
                         std::uint64_t z = 1);
  ScheduleParam* AddSchedule(std::string name, std::uint64_t period = 1, std::uint64_t delay = 0);
  StepParam* AddStep(std::string name, std::int64_t lo, std::int64_t hi, std::int64_t stride);

  // ---- specification phase: resources ----
  ModuleRes* AddModule(std::string name, std::string source);
  KernelRes* AddKernel(std::string name, ModuleRes* module, std::string kernel_name);
  MemoryRes* AddHostMemory(std::string name, const ExtentParam* extent);
  MemoryRes* AddGlobalMemory(std::string name, const ExtentParam* extent);
  MemoryRes* AddConstantMemory(std::string name, const ExtentParam* extent, ModuleRes* module,
                               std::string constant_name);
  SubsetRes* AddSubset(std::string name, MemoryRes* base, const ExtentParam* window,
                       std::int64_t stride_elems, std::uint64_t reset_period);
  TextureRes* AddTexture(std::string name, ModuleRes* module, std::string texture_name,
                         MemoryRes* source, const ExtentParam* dims);

  // ---- specification phase: actions ----
  CopyAction* AddCopy(std::string name, const ScheduleParam* schedule, CopyAction::Endpoint src,
                      CopyAction::Endpoint dst);
  KernelExecAction* AddKernelExec(std::string name, const ScheduleParam* schedule,
                                  KernelRes* kernel, const TripletParam* grid,
                                  const TripletParam* block,
                                  std::vector<KernelExecAction::Arg> args,
                                  const IntParam* dynamic_smem = nullptr);
  UserFnAction* AddUserFn(std::string name, const ScheduleParam* schedule,
                          std::function<void(Pipeline&, std::uint64_t)> fn);
  FileIOAction* AddFileIO(std::string name, const ScheduleParam* schedule, MemoryRes* mem,
                          std::string path, FileIOAction::Dir dir);

  // ---- refresh phase ----
  // Refreshes stale resources; returns the number refreshed.
  int Refresh();

  // ---- execution phase ----
  // Runs `iterations` pipeline iterations (refreshing first if needed).
  void Run(std::uint64_t iterations = 1);

  std::uint64_t iteration() const { return iter_; }
  void ResetIteration() { iter_ = 0; }

  // Total simulated milliseconds across all actions since the last reset.
  double TotalSimMillis() const;
  void ResetTiming();

  // Appendix-G-style per-operation timing report.
  std::string TimingReport() const;

  const std::vector<std::unique_ptr<Action>>& actions() const { return actions_; }

  // Transfer model (host<->device copies are simulated, Section 6.1 reports
  // include transfer time).
  double HtoDMillis(std::uint64_t bytes) const;

 private:
  friend class ModuleRes;
  friend class MemoryRes;
  friend class CopyAction;
  friend class KernelExecAction;

  vcuda::Context* ctx_;
  std::vector<std::unique_ptr<Param>> params_;
  std::vector<std::unique_ptr<Resource>> resources_;
  std::vector<std::unique_ptr<Action>> actions_;
  std::uint64_t iter_ = 0;
  bool needs_refresh_ = true;
};

}  // namespace kspec::gpupf
