// GPU-PF parameter objects (dissertation Table 4.1).
//
// Parameters are the root of the GPU-PF dependency hierarchy: resources are
// defined in terms of parameters, actions in terms of parameters and
// resources (Figure 4.1). Every mutation bumps a version counter; the
// pipeline's refresh phase re-derives exactly the resources whose parameter
// dependencies changed — including re-specializing (recompiling) kernels
// whose bound defines changed.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/status.hpp"
#include "support/str.hpp"
#include "vgpu/memory.hpp"
#include "vgpu/types.hpp"

namespace kspec::gpupf {

class Param {
 public:
  explicit Param(std::string name) : name_(std::move(name)) {}
  virtual ~Param() = default;

  const std::string& name() const { return name_; }
  std::uint64_t version() const { return version_; }

  // Human-readable current value (used in Appendix-G-style logs).
  virtual std::string Describe() const = 0;

 protected:
  void Touch() { ++version_; }

 private:
  std::string name_;
  std::uint64_t version_ = 1;
};

class IntParam : public Param {
 public:
  IntParam(std::string name, std::int64_t value) : Param(std::move(name)), value_(value) {}
  std::int64_t value() const { return value_; }
  void Set(std::int64_t v) {
    if (v != value_) {
      value_ = v;
      Touch();
    }
  }
  std::string Describe() const override { return Format("%lld", static_cast<long long>(value_)); }

 private:
  std::int64_t value_;
};

class FloatParam : public Param {
 public:
  FloatParam(std::string name, double value) : Param(std::move(name)), value_(value) {}
  double value() const { return value_; }
  void Set(double v) {
    if (v != value_) {
      value_ = v;
      Touch();
    }
  }
  std::string Describe() const override { return Format("%g", value_); }

 private:
  double value_;
};

class BoolParam : public Param {
 public:
  BoolParam(std::string name, bool value) : Param(std::move(name)), value_(value) {}
  bool value() const { return value_; }
  void Set(bool v) {
    if (v != value_) {
      value_ = v;
      Touch();
    }
  }
  std::string Describe() const override { return value_ ? "true" : "false"; }

 private:
  bool value_;
};

// Data type parameter (Table 4.1 "Type").
class TypeParam : public Param {
 public:
  TypeParam(std::string name, vgpu::Type value) : Param(std::move(name)), value_(value) {}
  vgpu::Type value() const { return value_; }
  void Set(vgpu::Type v) {
    if (v != value_) {
      value_ = v;
      Touch();
    }
  }
  std::string Describe() const override { return vgpu::TypeName(value_); }

 private:
  vgpu::Type value_;
};

// Three integers; commonly grid/block dimensions.
class TripletParam : public Param {
 public:
  TripletParam(std::string name, vgpu::Dim3 value) : Param(std::move(name)), value_(value) {}
  vgpu::Dim3 value() const { return value_; }
  void Set(vgpu::Dim3 v) {
    if (!(v == value_)) {
      value_ = v;
      Touch();
    }
  }
  std::string Describe() const override { return value_.ToString(); }

 private:
  vgpu::Dim3 value_;
};

class PairParam : public Param {
 public:
  PairParam(std::string name, std::int64_t first, std::int64_t second)
      : Param(std::move(name)), first_(first), second_(second) {}
  std::int64_t first() const { return first_; }
  std::int64_t second() const { return second_; }
  void Set(std::int64_t f, std::int64_t s) {
    if (f != first_ || s != second_) {
      first_ = f;
      second_ = s;
      Touch();
    }
  }
  std::string Describe() const override {
    return Format("(%lld,%lld)", static_cast<long long>(first_), static_cast<long long>(second_));
  }

 private:
  std::int64_t first_, second_;
};

class PointerParam : public Param {
 public:
  PointerParam(std::string name, vgpu::DevPtr value) : Param(std::move(name)), value_(value) {}
  vgpu::DevPtr value() const { return value_; }
  void Set(vgpu::DevPtr v) {
    if (v != value_) {
      value_ = v;
      Touch();
    }
  }
  std::string Describe() const override {
    return Format("0x%llx", static_cast<unsigned long long>(value_));
  }

 private:
  vgpu::DevPtr value_;
};

// Memory geometry: up to three dimensions plus element size (Table 4.1
// "Memory Extent").
class ExtentParam : public Param {
 public:
  ExtentParam(std::string name, std::size_t elem_size, std::uint64_t x, std::uint64_t y = 1,
              std::uint64_t z = 1)
      : Param(std::move(name)), elem_size_(elem_size), dims_{x, y, z} {}

  std::uint64_t x() const { return dims_[0]; }
  std::uint64_t y() const { return dims_[1]; }
  std::uint64_t z() const { return dims_[2]; }
  std::size_t elem_size() const { return elem_size_; }
  std::uint64_t count() const { return dims_[0] * dims_[1] * dims_[2]; }
  std::uint64_t bytes() const { return count() * elem_size_; }

  void Set(std::uint64_t x, std::uint64_t y = 1, std::uint64_t z = 1) {
    if (x != dims_[0] || y != dims_[1] || z != dims_[2]) {
      dims_ = {x, y, z};
      Touch();
    }
  }
  void SetElemSize(std::size_t s) {
    if (s != elem_size_) {
      elem_size_ = s;
      Touch();
    }
  }
  std::string Describe() const override {
    return Format("%llux%llux%llu x %zuB", static_cast<unsigned long long>(dims_[0]),
                  static_cast<unsigned long long>(dims_[1]),
                  static_cast<unsigned long long>(dims_[2]), elem_size_);
  }

 private:
  std::size_t elem_size_;
  std::array<std::uint64_t, 3> dims_;
};

// Event timing: an action fires on iterations where
// (iter >= delay) && ((iter - delay) % period == 0).
class ScheduleParam : public Param {
 public:
  ScheduleParam(std::string name, std::uint64_t period = 1, std::uint64_t delay = 0)
      : Param(std::move(name)), period_(period ? period : 1), delay_(delay) {}
  bool FiresAt(std::uint64_t iter) const {
    return iter >= delay_ && (iter - delay_) % period_ == 0;
  }
  void Set(std::uint64_t period, std::uint64_t delay = 0) {
    period = period ? period : 1;
    if (period != period_ || delay != delay_) {
      period_ = period;
      delay_ = delay;
      Touch();
    }
  }
  std::string Describe() const override {
    return Format("every %llu (delay %llu)", static_cast<unsigned long long>(period_),
                  static_cast<unsigned long long>(delay_));
  }

 private:
  std::uint64_t period_, delay_;
};

// Self-updating parameter sweeping [lo, hi] by stride (Table 4.1 "Step").
class StepParam : public Param {
 public:
  StepParam(std::string name, std::int64_t lo, std::int64_t hi, std::int64_t stride)
      : Param(std::move(name)), lo_(lo), hi_(hi), stride_(stride), value_(lo) {
    KSPEC_CHECK_MSG(stride != 0, "step stride must be nonzero");
  }
  std::int64_t value() const { return value_; }
  // Advances; wraps to lo past hi. Returns true when it wrapped.
  bool Advance() {
    value_ += stride_;
    if ((stride_ > 0 && value_ > hi_) || (stride_ < 0 && value_ < lo_)) {
      value_ = lo_;
      Touch();
      return true;
    }
    Touch();
    return false;
  }
  std::string Describe() const override {
    return Format("%lld in [%lld,%lld] step %lld", static_cast<long long>(value_),
                  static_cast<long long>(lo_), static_cast<long long>(hi_),
                  static_cast<long long>(stride_));
  }

 private:
  std::int64_t lo_, hi_, stride_, value_;
};

}  // namespace kspec::gpupf
