// One simulated device in the fleet: a vcuda::Context (with its module and
// tuning caches) plus a run queue of routed launch requests.
//
// A shard is where the PR 2-6 stack becomes multi-tenant state worth routing
// for: its Context owns the two-tier specialization cache, its StageRunner
// owns the TieredLoader heat per source, and the fleet-shared TuningCache is
// keyed by the shard's device name — so "which shard runs this request"
// decides whether the request is a microsecond cache hit or a
// hundreds-of-milliseconds compile. The scheduler's affinity router asks
// IsResident; everything else here is the machinery to answer requests once
// they are queued.
//
// Threading: Enqueue/QueueDepth/stats are thread-safe (the dispatcher routes
// while ExecPool workers drain). DrainQueue itself is run by exactly one
// ExecPool participant at a time — the dispatcher's ParallelFor hands each
// shard index to one worker — so the Context/StageRunner see single-threaded
// use with ParallelFor's completion barrier ordering successive batches.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "launch/stage_runner.hpp"
#include "sched/request.hpp"
#include "tune/tuner.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/device.hpp"

namespace kspec::sched {

// A routed request waiting on a shard's run queue.
struct PendingLaunch {
  LaunchRequest req;
  std::promise<LaunchResult> promise;
  std::chrono::steady_clock::time_point submitted;   // admission time
  std::chrono::steady_clock::time_point dispatched;  // routing time
  bool affinity_hit = false;
  // The caller pinned this request to its shard (req.pin_shard >= 0): an
  // idle shard must never steal it.
  bool pinned = false;
};

class DeviceShard {
 public:
  // `executor`, when given, is attached to the shard's context so tiered
  // promotion and prewarm compile in the background; `tuning_cache`, when
  // given, is the fleet-shared tuned-configuration store (thread-safe).
  DeviceShard(int id, const vgpu::DeviceProfile& profile, int hot_threshold,
              vcuda::AsyncCompileService* executor, tune::TuningCache* tuning_cache);

  int id() const { return id_; }
  const std::string& device_name() const { return ctx_.device().name; }
  vcuda::Context& ctx() { return ctx_; }
  launch::StageRunner& runner() { return runner_; }

  // Affinity probe: would this (source, specialization) be served without a
  // fresh compile here? Safe from the dispatcher thread.
  bool IsResident(const std::string& source, const kcc::CompileOptions& opts) const {
    return runner_.IsResident(source, opts);
  }

  // Fleet-shared tuned configuration for this shard's device: answers from
  // the shared TuningCache (the key embeds the device name, so same-profile
  // shards reuse each other's entries), running `search` at most once
  // fleet-wide per (kernel, device, signature). Without a shared cache the
  // search runs locally every time.
  tune::Config TunedConfig(const std::string& kernel, const std::string& problem_signature,
                           const std::function<tune::Config()>& search);

  // -------- run queue --------
  void Enqueue(PendingLaunch item);
  std::size_t QueueDepth() const;

  // Runs every currently queued request to completion (later enqueues during
  // the drain are picked up too) and fulfills their promises. A request that
  // throws — DeviceError from a bad configuration, CompileError from a bad
  // specialization — fails only its own promise: the queue, the shard, and
  // the rest of the batch keep going. Returns {delivered results, delivered
  // exceptions} for the scheduler's fleet accounting.
  struct DrainOutcome {
    std::size_t completed = 0;
    std::size_t failed = 0;
  };
  DrainOutcome DrainQueue();

  // Runs one request on THIS shard's context and fulfills its promise — the
  // work-stealing path: the scheduler hands an idle shard an item popped off
  // a busy shard's queue. Same failure isolation as DrainQueue. Returns true
  // when the request delivered a result, false when it delivered an
  // exception. Only call from the shard's current drain participant.
  bool RunOne(PendingLaunch& item);

  // Pops the newest non-pinned queued request for a stealing shard; false
  // when the queue holds nothing stealable. Newest-first keeps the oldest
  // items with the shard that was routed them (it is actively draining from
  // the front, and they are likelier to be cache-resident there).
  bool StealOne(PendingLaunch* out);

  ShardStats stats() const;

 private:
  const int id_;
  vcuda::Context ctx_;
  launch::StageRunner runner_;
  tune::TuningCache* tuning_cache_;  // fleet-shared; may be null

  mutable std::mutex mu_;  // guards queue_ and stats_
  std::deque<PendingLaunch> queue_;
  ShardStats stats_;
};

}  // namespace kspec::sched
