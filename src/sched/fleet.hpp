// FleetScheduler: many independent launches routed across N simulated
// devices.
//
// The dissertation's claim is that one specializable kernel source adapts
// across GPU generations; a serving fleet turns that into a placement
// problem. KLARAPTOR showed optimal launch parameters are per-device, and the
// specialization caches (module + tuning) are per-context — so a device that
// already holds the specialized `.kmod` and the tuned configuration answers
// the same request orders of magnitude faster than a cold one. The scheduler
// therefore routes by *cache affinity* first (see Routing in request.hpp),
// not load alone.
//
// Shape: Submit() places requests on one bounded admission queue (rejecting
// at the cap — callers observe backpressure, exactly like the compile
// service). A dispatcher thread takes requests in batches, routes each one
// to a DeviceShard run queue, then drains every shard queue concurrently on
// the process-wide ExecPool — one participant per shard, so shard-internal
// state needs no locking and fleet throughput scales with shards up to the
// host's cores. Results come back through per-request futures carrying the
// launch stats and the queue/total latency split the benchmarks report.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sched/device_shard.hpp"
#include "sched/request.hpp"
#include "serve/compile_executor.hpp"
#include "tune/tuner.hpp"
#include "vgpu/device.hpp"

namespace kspec::sched {

struct FleetOptions {
  std::size_t max_queue = 1024;  // admission-queue bound; Submit rejects past it
  std::size_t max_batch = 64;    // requests routed per dispatcher wake-up
  // Tiered hot threshold per shard. 1 = promote on first request: a serving
  // fleet wants every key specialized somewhere as soon as it shows up, and
  // the promotion compiles in the background when an executor is attached.
  int hot_threshold = 1;
  Routing routing = Routing::kAffinity;
  std::uint64_t random_seed = 0x9e3779b97f4a7c15ull;  // kRandom's xorshift seed
  // Work stealing between shards: a shard whose run queue drains while the
  // batch is still in flight pops the newest non-pinned item off the longest
  // remaining queue and runs it locally (paying a cold compile if the build
  // is not resident — the trade-off is latency tail vs. cache affinity,
  // which is why it is off by default). Pinned requests are never stolen.
  bool work_stealing = false;
  // Start the dispatcher in the constructor. Tests that need deterministic
  // queue states construct paused and call Start() themselves.
  bool autostart = true;
  // Attached to every shard context: background tiered promotion + prewarm.
  // Not owned; must outlive the scheduler. May be null (blocking promotion).
  serve::CompileExecutor* executor = nullptr;
  // Fleet-shared tuned-configuration store (thread-safe; keys embed the
  // device name, so same-profile shards share). Not owned; may be null.
  tune::TuningCache* tuning_cache = nullptr;
};

class FleetScheduler {
 public:
  // One shard per profile, in order; `devices` may mix VC1060/VC2070 freely.
  FleetScheduler(const std::vector<vgpu::DeviceProfile>& devices, FleetOptions opts = {});
  ~FleetScheduler();  // Shutdown()

  FleetScheduler(const FleetScheduler&) = delete;
  FleetScheduler& operator=(const FleetScheduler&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  DeviceShard& shard(std::size_t i) { return *shards_.at(i); }

  // Admission. `accepted == false` means the bounded queue was full (or the
  // scheduler is shutting down): the request was NOT enqueued and `result`
  // is invalid — the caller retries or degrades, exactly like a kRejected
  // compile submit. Throws Error on malformed requests (bad pin_shard).
  struct Ticket {
    bool accepted = false;
    std::shared_future<LaunchResult> result;
  };
  Ticket Submit(LaunchRequest req);

  // Seeds cache affinity: compiles (source, opts) on `shard` — or, with a
  // negative shard, on the currently least-loaded one — through the attached
  // CompileExecutor (background), or inline when none is attached. Returns
  // the shard chosen, or -1 when the executor rejected the prewarm.
  int Prewarm(const std::string& source, const kcc::CompileOptions& opts, int shard = -1);

  // Starts the dispatcher (idempotent; the constructor calls it unless
  // autostart is false).
  void Start();

  // Blocks until every accepted request has been dispatched and completed
  // (the admission queue is empty and every shard queue has drained).
  void Drain();

  // Rejects further submits, completes the accepted backlog, joins the
  // dispatcher. Idempotent; the destructor runs it.
  void Shutdown();

  FleetStats stats() const;
  ShardStats shard_stats(std::size_t i) const { return shards_.at(i)->stats(); }

 private:
  void DispatchLoop();
  // Picks the shard for `req` (dispatcher thread only). Sets *affinity_hit
  // when the choice was residency-driven.
  std::size_t Route(const LaunchRequest& req, bool* affinity_hit);
  std::size_t LeastLoadedShard() const;

  FleetOptions opts_;
  std::vector<std::unique_ptr<DeviceShard>> shards_;

  mutable std::mutex mu_;  // guards the admission queue, stats, and lifecycle
  std::condition_variable work_cv_;  // dispatcher waits for admissions
  std::condition_variable idle_cv_;  // Drain waits for an empty backlog
  bool stopping_ = false;
  bool started_ = false;
  std::size_t in_dispatch_ = 0;  // requests routed but not yet completed
  std::deque<PendingLaunch> admission_;
  FleetStats stats_;
  std::uint64_t rng_state_;
  std::thread dispatcher_;
};

}  // namespace kspec::sched
