#include "sched/device_shard.hpp"

#include <algorithm>
#include <utility>

namespace kspec::sched {

namespace {

launch::RunnerOptions ShardRunnerOptions(int hot_threshold) {
  launch::RunnerOptions opts;
  // Tiered, not kAsyncPromote: the shard works with or without an executor
  // attached, and promotion turns non-blocking automatically when one is.
  opts.policy = launch::LoadPolicy::kTiered;
  opts.hot_threshold = hot_threshold;
  return opts;
}

}  // namespace

DeviceShard::DeviceShard(int id, const vgpu::DeviceProfile& profile, int hot_threshold,
                         vcuda::AsyncCompileService* executor, tune::TuningCache* tuning_cache)
    : id_(id),
      ctx_(profile),
      runner_(ctx_, ShardRunnerOptions(hot_threshold)),
      tuning_cache_(tuning_cache) {
  if (executor != nullptr) ctx_.set_async_service(executor);
}

tune::Config DeviceShard::TunedConfig(const std::string& kernel,
                                      const std::string& problem_signature,
                                      const std::function<tune::Config()>& search) {
  if (tuning_cache_ == nullptr) return search();
  const std::string key =
      tune::TuningCache::MakeKey(kernel, device_name(), problem_signature);
  return tuning_cache_->LookupOrCompute(key, search);
}

void DeviceShard::Enqueue(PendingLaunch item) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(item));
  stats_.queue_high_water = std::max(stats_.queue_high_water, queue_.size());
}

std::size_t DeviceShard::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

DeviceShard::DrainOutcome DeviceShard::DrainQueue() {
  DrainOutcome out;
  for (;;) {
    PendingLaunch item;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) return out;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    if (RunOne(item)) {
      ++out.completed;
    } else {
      ++out.failed;
    }
  }
}

bool DeviceShard::StealOne(PendingLaunch* out) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
    if (it->pinned) continue;
    *out = std::move(*it);
    queue_.erase(std::next(it).base());
    return true;
  }
  return false;
}

bool DeviceShard::RunOne(PendingLaunch& item) {
  const LaunchRequest& req = item.req;
  try {
    std::shared_ptr<vcuda::Module> mod = runner_.LoadStage(req.stage, req.source, req.opts);
    const bool specialized = runner_.IsSpecialized(req.source, req.opts);

    // Scratch buffers free after finish() — launch inputs and outputs live
    // exactly as long as the request needs them on this shard.
    std::vector<vcuda::DeviceBuffer> scratch;
    vcuda::ArgPack args;
    if (req.prepare) args = req.prepare(ctx_, scratch);

    LaunchResult result;
    result.stats =
        runner_.Launch(req.stage, *mod, req.kernel, req.grid, req.block, args,
                       req.dynamic_smem_bytes);
    if (req.finish) req.finish(ctx_);

    const auto now = std::chrono::steady_clock::now();
    result.shard = id_;
    result.affinity_hit = item.affinity_hit;
    result.specialized = specialized;
    result.queue_millis =
        std::chrono::duration<double, std::milli>(item.dispatched - item.submitted).count();
    result.total_millis =
        std::chrono::duration<double, std::milli>(now - item.submitted).count();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.launches;
      if (specialized) ++stats_.specialized_served;
      stats_.sim_millis += result.stats.sim_millis;
    }
    item.promise.set_value(std::move(result));
    return true;
  } catch (...) {
    // Shard failure isolation: this request's waiter gets the exception; the
    // shard and its queue stay healthy.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failures;
    }
    item.promise.set_exception(std::current_exception());
    return false;
  }
}

ShardStats DeviceShard::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace kspec::sched
