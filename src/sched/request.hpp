// The fleet scheduler's request/response vocabulary.
//
// Production traffic is many independent small launches, not one process
// driving one device: a client ships (source, specialization options, kernel,
// geometry) plus callbacks that materialize its arguments on whichever shard
// the scheduler picks. The specialization is carried as canonical
// kcc::CompileOptions — built once, client-side, typically from a
// launch::SpecBuilder — so the request is routable: the scheduler can ask
// every shard "do you already hold this build?" before choosing one.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "kcc/compiler.hpp"
#include "vcuda/device_buffer.hpp"
#include "vcuda/vcuda.hpp"
#include "vgpu/launch.hpp"

namespace kspec::sched {

// Builds the argument pack on the shard chosen to run the request. Device
// pointers are per-shard, so arguments cannot travel with the request: the
// callback uploads the client's inputs into `scratch` (buffers it pushes
// there are freed after the launch and the finish hook) and returns the args.
using PrepareFn =
    std::function<vcuda::ArgPack(vcuda::Context& ctx, std::vector<vcuda::DeviceBuffer>& scratch)>;

// Optional post-launch hook on the same shard, before the scratch buffers are
// freed (download results, verify, hand off).
using FinishFn = std::function<void(vcuda::Context& ctx)>;

struct LaunchRequest {
  std::string stage = "fleet";  // accounting label in the shard's breakdown
  std::string source;           // single adaptable Kernel-C source
  kcc::CompileOptions opts;     // the specialization (empty = RE build)
  std::string kernel;
  vgpu::Dim3 grid{1, 1, 1};
  vgpu::Dim3 block{32, 1, 1};
  unsigned dynamic_smem_bytes = 0;
  PrepareFn prepare;  // may be empty for argument-less kernels
  FinishFn finish;    // optional
  // Tests and benchmarks: force the request onto one shard (-1 = route
  // normally). Out-of-range values are a submit-time error.
  int pin_shard = -1;
};

struct LaunchResult {
  vgpu::LaunchStats stats;   // the launch's simulated statistics
  int shard = -1;            // which shard ran it
  bool affinity_hit = false; // routed to a shard already holding the build
  bool specialized = false;  // served by the specialized build (vs the RE build)
  double queue_millis = 0;   // admission -> dispatch (batching + routing wait)
  double total_millis = 0;   // admission -> completion: time-to-result
};

// How the dispatcher picks a shard for an unpinned request.
//
//   kAffinity    — prefer shards where the specialization is already resident
//                  (specialized tiered build or module-cache entry); among
//                  those, the least loaded; no resident shard -> kLeastLoaded.
//                  The tradeoff: affinity concentrates a hot key on one shard,
//                  which wins while compile cost and cache reuse dominate, but
//                  it deliberately forgoes spreading that key's load — the
//                  least-loaded fallback and the per-batch depth tiebreak are
//                  what keep a single viral key from starving a shard.
//   kLeastLoaded — ignore residency, balance queue depth only.
//   kRandom      — seeded xorshift; the control arm for benchmarks.
enum class Routing { kAffinity, kLeastLoaded, kRandom };

struct ShardStats {
  std::uint64_t launches = 0;        // requests run to completion (ok)
  std::uint64_t failures = 0;        // requests whose run threw
  std::uint64_t specialized_served = 0;  // completed launches served specialized
  double sim_millis = 0;             // accumulated simulated device time
  std::size_t queue_high_water = 0;  // run-queue depth high-water mark
};

// Fleet-level accounting. Invariant (asserted by tests, after Drain):
//   submitted == dispatched == completed + failed
// and `rejected` counts admissions bounced at the queue cap — a rejected
// request is never submitted, dispatched, or completed.
struct FleetStats {
  std::uint64_t submitted = 0;   // accepted into the admission queue
  std::uint64_t rejected = 0;    // bounced: admission queue at capacity
  std::uint64_t dispatched = 0;  // routed onto a shard run queue
  std::uint64_t completed = 0;   // result delivered
  std::uint64_t failed = 0;      // exception delivered
  std::uint64_t affinity_hits = 0;    // dispatches that hit a resident shard
  std::uint64_t steals = 0;           // requests run by an idle shard that stole them
  std::uint64_t prewarms = 0;         // Prewarm calls accepted
  std::uint64_t batches = 0;          // dispatcher wake-ups that routed work
  std::size_t queue_high_water = 0;   // admission-queue depth high-water mark
};

}  // namespace kspec::sched
