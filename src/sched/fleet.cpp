#include "sched/fleet.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "support/status.hpp"
#include "vgpu/exec_pool.hpp"

namespace kspec::sched {

FleetScheduler::FleetScheduler(const std::vector<vgpu::DeviceProfile>& devices,
                               FleetOptions opts)
    : opts_(opts), rng_state_(opts.random_seed ? opts.random_seed : 1) {
  KSPEC_CHECK_MSG(!devices.empty(), "a fleet needs at least one device");
  shards_.reserve(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    shards_.push_back(std::make_unique<DeviceShard>(static_cast<int>(i), devices[i],
                                                    opts_.hot_threshold, opts_.executor,
                                                    opts_.tuning_cache));
  }
  if (opts_.autostart) Start();
}

FleetScheduler::~FleetScheduler() { Shutdown(); }

void FleetScheduler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

FleetScheduler::Ticket FleetScheduler::Submit(LaunchRequest req) {
  if (req.pin_shard >= static_cast<int>(shards_.size())) {
    throw Error("fleet: pin_shard " + std::to_string(req.pin_shard) + " out of range (" +
                std::to_string(shards_.size()) + " shards)");
  }
  PendingLaunch item;
  item.req = std::move(req);
  item.submitted = std::chrono::steady_clock::now();
  std::shared_future<LaunchResult> fut = item.promise.get_future().share();

  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_ || admission_.size() >= opts_.max_queue) {
    ++stats_.rejected;
    return {};
  }
  ++stats_.submitted;
  admission_.push_back(std::move(item));
  stats_.queue_high_water = std::max(stats_.queue_high_water, admission_.size());
  work_cv_.notify_one();
  return {true, std::move(fut)};
}

int FleetScheduler::Prewarm(const std::string& source, const kcc::CompileOptions& opts,
                            int shard) {
  if (shard < 0) shard = static_cast<int>(LeastLoadedShard());
  if (shard >= static_cast<int>(shards_.size())) {
    throw Error("fleet: prewarm shard " + std::to_string(shard) + " out of range");
  }
  DeviceShard& s = *shards_[shard];
  if (opts_.executor != nullptr) {
    vcuda::CompileRequest req;
    req.source = source;
    req.opts = opts;
    if (!opts_.executor->Prewarm(s.ctx(), req).ok()) return -1;
  } else {
    s.ctx().LoadModule(source, opts);  // no executor: warm inline
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.prewarms;
  return shard;
}

void FleetScheduler::DispatchLoop() {
  for (;;) {
    std::vector<PendingLaunch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !admission_.empty(); });
      if (admission_.empty()) return;  // stopping with the backlog drained
      while (!admission_.empty() && batch.size() < opts_.max_batch) {
        batch.push_back(std::move(admission_.front()));
        admission_.pop_front();
      }
      ++stats_.batches;
      in_dispatch_ += batch.size();
    }

    // Route the whole batch before running any of it: depth-based choices see
    // the batch's own placements, so a burst of one hot key spreads only as
    // far as its affinity shard's queue justifies.
    const auto dispatched_at = std::chrono::steady_clock::now();
    std::uint64_t hits = 0;
    for (PendingLaunch& item : batch) {
      bool affinity_hit = false;
      const std::size_t target = Route(item.req, &affinity_hit);
      item.dispatched = dispatched_at;
      item.affinity_hit = affinity_hit;
      item.pinned = item.req.pin_shard >= 0;
      hits += affinity_hit ? 1 : 0;
      shards_[target]->Enqueue(std::move(item));
    }

    // Drain every shard's run queue concurrently on the shared worker pool:
    // one participant per shard, launches inside a shard stay in order. With
    // work stealing, a participant that drains early relieves the longest
    // remaining queue instead of idling out the batch.
    std::vector<DeviceShard::DrainOutcome> outcomes(shards_.size());
    std::vector<std::uint64_t> steals(shards_.size(), 0);
    vgpu::ExecPool::Instance().ParallelFor(
        static_cast<unsigned>(shards_.size()), shards_.size(), [&](std::size_t i) {
          outcomes[i] = shards_[i]->DrainQueue();
          if (!opts_.work_stealing) return;
          for (;;) {
            std::size_t victim = shards_.size();
            std::size_t deepest = 1;  // >= 2 to steal: never contest the last item
            for (std::size_t j = 0; j < shards_.size(); ++j) {
              if (j == i) continue;
              const std::size_t depth = shards_[j]->QueueDepth();
              if (depth > deepest) {
                deepest = depth;
                victim = j;
              }
            }
            if (victim == shards_.size()) return;
            PendingLaunch item;
            // A failed pop (the victim drained it first, or everything left
            // is pinned) ends this thief's round rather than re-scanning: a
            // queue of unstealable pinned items must not spin us forever.
            if (!shards_[victim]->StealOne(&item)) return;
            ++steals[i];
            if (shards_[i]->RunOne(item)) {
              ++outcomes[i].completed;
            } else {
              ++outcomes[i].failed;
            }
          }
        });

    std::lock_guard<std::mutex> lock(mu_);
    stats_.dispatched += batch.size();
    stats_.affinity_hits += hits;
    for (std::uint64_t s : steals) stats_.steals += s;
    for (const DeviceShard::DrainOutcome& o : outcomes) {
      stats_.completed += o.completed;
      stats_.failed += o.failed;
    }
    in_dispatch_ -= batch.size();
    if (admission_.empty() && in_dispatch_ == 0) idle_cv_.notify_all();
  }
}

std::size_t FleetScheduler::LeastLoadedShard() const {
  std::size_t best = 0;
  std::size_t best_depth = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::size_t depth = shards_[i]->QueueDepth();
    if (depth < best_depth) {  // strict: ties break to the lowest index
      best = i;
      best_depth = depth;
    }
  }
  return best;
}

std::size_t FleetScheduler::Route(const LaunchRequest& req, bool* affinity_hit) {
  *affinity_hit = false;
  if (req.pin_shard >= 0) return static_cast<std::size_t>(req.pin_shard);
  switch (opts_.routing) {
    case Routing::kRandom: {
      // xorshift64: deterministic per seed, uncorrelated with key identity —
      // the control arm affinity routing is benchmarked against.
      rng_state_ ^= rng_state_ << 13;
      rng_state_ ^= rng_state_ >> 7;
      rng_state_ ^= rng_state_ << 17;
      return static_cast<std::size_t>(rng_state_ % shards_.size());
    }
    case Routing::kLeastLoaded:
      return LeastLoadedShard();
    case Routing::kAffinity: {
      // Prefer the least-loaded shard among those already holding this
      // build; no resident shard means this key is cold fleet-wide, so place
      // it by load (and let the tiered promotion make it resident there).
      std::size_t best = shards_.size();
      std::size_t best_depth = std::numeric_limits<std::size_t>::max();
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (!shards_[i]->IsResident(req.source, req.opts)) continue;
        const std::size_t depth = shards_[i]->QueueDepth();
        if (depth < best_depth) {
          best = i;
          best_depth = depth;
        }
      }
      if (best < shards_.size()) {
        *affinity_hit = true;
        return best;
      }
      return LeastLoadedShard();
    }
  }
  return 0;  // unreachable; keeps -Wreturn-type quiet
}

void FleetScheduler::Drain() {
  Start();  // a paused scheduler would otherwise wait forever
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return admission_.empty() && in_dispatch_ == 0; });
}

void FleetScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    work_cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  // A never-started scheduler may still hold accepted requests: fail them
  // explicitly rather than letting their promises break silently.
  std::deque<PendingLaunch> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(admission_);
    stats_.failed += leftover.size();
    idle_cv_.notify_all();
  }
  for (PendingLaunch& item : leftover) {
    item.promise.set_exception(
        std::make_exception_ptr(Error("fleet: scheduler shut down before dispatch")));
  }
}

FleetStats FleetScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace kspec::sched
