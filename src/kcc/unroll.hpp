// Front-end loop unrolling and local-array scalarization.
//
// These two transformations are the heart of what specialization buys
// (Sections 2.4 and 4): a `for` loop whose bounds fold to compile-time
// constants is fully unrolled (the specialized PTX in Appendix D "has no
// control flow"), and a local array whose every index is then a constant is
// promoted to scalar variables — i.e. registers. NVIDIA GPUs cannot
// indirectly address registers, so register blocking requires exactly this
// chain: fixed trip counts -> unrolling -> constant indices -> registers.
// When the chain breaks (a run-time bound), the loop simply stays rolled and
// a local array becomes a compile error with guidance, mirroring real CUDA
// behaviour where such arrays fall to slow local memory.
#pragma once

#include "kcc/ast.hpp"

namespace kspec::kcc {

struct UnrollResult {
  int loops_unrolled = 0;
  int loops_kept = 0;  // loops left rolled (run-time bounds or over budget)
};

// Unrolls every fully-constant counted loop in `kernel` whose trip count is
// <= max_unroll. Folds as it goes. The AST must be sema-typed.
UnrollResult UnrollLoops(KernelDecl& kernel, int max_unroll);

// Replaces local (register) arrays with scalars. Must run after UnrollLoops.
// Throws CompileError if a non-constant index into a local array survives.
// Returns the number of arrays scalarized.
int ScalarizeLocalArrays(KernelDecl& kernel);

}  // namespace kspec::kcc
