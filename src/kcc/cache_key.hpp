// Structured specialization-cache key.
//
// The cache that backs the dissertation's "load with speed similar to a
// dynamically linked shared object" claim (Section 4.3) must never serve the
// wrong specialized binary. A bare 64-bit digest cannot guarantee that, so the
// key is a structured value covering everything that changes the compiled
// artifact — source text, every -D definition, every CompileOptions field, and
// the target device — and cache lookups verify full-key equality on every hash
// match instead of trusting the digest.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "kcc/compiler.hpp"

namespace kspec::kcc {

struct ModuleCacheKey {
  std::string source;
  std::map<std::string, std::string> defines;  // std::map iterates sorted
  int max_unroll = 512;
  bool optimize = true;
  bool enable_unroll = true;
  bool enable_strength_reduction = true;
  bool enable_cse = true;
  std::string device_name;

  static ModuleCacheKey Make(const std::string& source, const CompileOptions& opts,
                             const std::string& device_name);

  // The CompileOptions this key was built from.
  CompileOptions Options() const;

  bool operator==(const ModuleCacheKey&) const = default;

  // Injective binary encoding of every field (length-prefixed, sorted
  // defines). Two keys are equal iff their canonical texts are equal, so this
  // string is what cache entries store and verify against — and what the
  // specialization daemon's wire protocol carries as the request body.
  std::string CanonicalText() const;

  // Inverse of CanonicalText: FromCanonicalText(k.CanonicalText()) == k.
  // Throws SerializeError on malformed or trailing input, so a daemon never
  // acts on a corrupted request frame.
  static ModuleCacheKey FromCanonicalText(std::string_view text);

  // FNV-1a of CanonicalText(); the cache's bucket index, never trusted alone.
  std::uint64_t Hash() const;

  // Disk artifact file name, e.g. "k01234567deadbeef.kmod". Derived from the
  // hash; the artifact embeds CanonicalText() so a colliding file is detected
  // and treated as a miss.
  std::string FileName() const;

  // Short human-readable form for log messages (defines + options + device);
  // not injective — the source text is elided.
  std::string Describe() const;
};

}  // namespace kspec::kcc
