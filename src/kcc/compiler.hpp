// The kcc compiler driver: Kernel-C source -> executable MiniPTX module.
//
// This is the stand-in for invoking `nvcc` at run time (Section 4.4): the
// caller provides the kernel source and a set of -D definitions carrying the
// specialized problem/implementation parameters, and receives compiled
// kernels with register counts, shared-memory footprints, ILP estimates, and
// a printable MiniPTX listing (the Appendix C/D artifact).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "vgpu/module.hpp"

namespace kspec::kcc {

struct CompileOptions {
  // -D NAME=value definitions. An empty value defines the macro to 1... no:
  // the value is substituted verbatim; use "1" for flags.
  std::map<std::string, std::string> defines;

  // Full-unroll budget in iterations per loop (nvcc-like heuristic cap).
  int max_unroll = 512;

  // Run the IR optimization passes. Disabling approximates -O0 and is used
  // by tests to compare optimized vs unoptimized code.
  bool optimize = true;

  // Fine-grained ablation switches (all on by default). These isolate the
  // contribution of each static-value optimization the dissertation names —
  // the bench_ablation_passes binary sweeps them.
  bool enable_unroll = true;
  bool enable_strength_reduction = true;
  bool enable_cse = true;
};

struct ConstantInfo {
  std::string name;
  vgpu::Type elem = vgpu::Type::kF32;
  std::int64_t count = 0;
  unsigned offset = 0;  // byte offset in the module's constant segment
  unsigned bytes = 0;
};

struct CompiledModule {
  std::vector<vgpu::CompiledKernel> kernels;
  std::vector<ConstantInfo> constants;
  // Texture names in slot order (slot index = position).
  std::vector<std::string> textures;
  unsigned const_bytes = 0;

  // Host wall time spent compiling the whole module. Recorded here (once)
  // rather than duplicated into every kernel's CompileStats so that modules
  // without kernels still account their compile cost.
  double compile_millis = 0;

  const vgpu::CompiledKernel* FindKernel(const std::string& name) const;
  const ConstantInfo* FindConstant(const std::string& name) const;
};

// Compiles every kernel in `source`. Throws CompileError with source context
// on any error.
CompiledModule CompileModule(const std::string& source, const CompileOptions& opts = {});

// Renders a `-D` command line equivalent for logging/caching, in
// deterministic (sorted) order, e.g. "-D TILE_W=16 -D CT_COUNT=1".
std::string DefinesToString(const std::map<std::string, std::string>& defines);

}  // namespace kspec::kcc
