#include "kcc/ast.hpp"

#include "support/status.hpp"

namespace kspec::kcc {

const char* ScalarName(Scalar s) {
  switch (s) {
    case Scalar::kVoid: return "void";
    case Scalar::kBool: return "bool";
    case Scalar::kInt: return "int";
    case Scalar::kUint: return "unsigned int";
    case Scalar::kLong: return "long long";
    case Scalar::kUlong: return "unsigned long long";
    case Scalar::kFloat: return "float";
    case Scalar::kDouble: return "double";
  }
  return "?";
}

vgpu::Type ScalarToIr(Scalar s) {
  switch (s) {
    case Scalar::kBool: return vgpu::Type::kPred;
    case Scalar::kInt: return vgpu::Type::kI32;
    case Scalar::kUint: return vgpu::Type::kU32;
    case Scalar::kLong: return vgpu::Type::kI64;
    case Scalar::kUlong: return vgpu::Type::kU64;
    case Scalar::kFloat: return vgpu::Type::kF32;
    case Scalar::kDouble: return vgpu::Type::kF64;
    case Scalar::kVoid: break;
  }
  throw InternalError("void has no IR type");
}

std::size_t ScalarSize(Scalar s) {
  switch (s) {
    case Scalar::kVoid: return 0;
    case Scalar::kBool: return 1;
    case Scalar::kInt:
    case Scalar::kUint:
    case Scalar::kFloat: return 4;
    case Scalar::kLong:
    case Scalar::kUlong:
    case Scalar::kDouble: return 8;
  }
  return 0;
}

bool IsFloatScalar(Scalar s) { return s == Scalar::kFloat || s == Scalar::kDouble; }
bool IsSignedScalar(Scalar s) { return s == Scalar::kInt || s == Scalar::kLong; }

std::string TypeRef::ToString() const {
  std::string out = ScalarName(scalar);
  if (is_pointer) {
    out += "* (";
    out += vgpu::SpaceName(space);
    out += ")";
  }
  return out;
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kRem: return "%";
    case BinOp::kAnd: return "&";
    case BinOp::kOr: return "|";
    case BinOp::kXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLogAnd: return "&&";
    case BinOp::kLogOr: return "||";
  }
  return "?";
}

ExprPtr MakeIntLit(std::int64_t v, Scalar s, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLit;
  e->int_value = static_cast<std::uint64_t>(v);
  e->type = TypeRef::Value(s);
  e->line = line;
  return e;
}

ExprPtr MakeFloatLit(double v, Scalar s, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFloatLit;
  e->float_value = v;
  e->type = TypeRef::Value(s);
  e->line = line;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->type = type;
  e->line = line;
  e->int_value = int_value;
  e->float_value = float_value;
  e->name = name;
  e->sreg = sreg;
  e->un_op = un_op;
  e->bin_op = bin_op;
  e->assign_op = assign_op;
  e->is_compound = is_compound;
  if (a) e->a = a->Clone();
  if (b) e->b = b->Clone();
  if (c) e->c = c->Clone();
  e->args.reserve(args.size());
  for (const auto& arg : args) e->args.push_back(arg->Clone());
  return e;
}

StmtPtr Stmt::Clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->line = line;
  for (const auto& d : decls) {
    VarDecl nd;
    nd.name = d.name;
    nd.type = d.type;
    nd.is_const = d.is_const;
    if (d.init) nd.init = d.init->Clone();
    s->decls.push_back(std::move(nd));
  }
  s->array_name = array_name;
  s->array_elem = array_elem;
  if (array_size) s->array_size = array_size->Clone();
  s->array_space = array_space;
  s->array_dynamic = array_dynamic;
  if (expr) s->expr = expr->Clone();
  if (cond) s->cond = cond->Clone();
  if (then_branch) s->then_branch = then_branch->Clone();
  if (else_branch) s->else_branch = else_branch->Clone();
  if (init) s->init = init->Clone();
  if (step) s->step = step->Clone();
  if (body) s->body = body->Clone();
  s->stmts.reserve(stmts.size());
  for (const auto& st : stmts) s->stmts.push_back(st->Clone());
  return s;
}

}  // namespace kspec::kcc
