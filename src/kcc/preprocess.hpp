// Kernel-C preprocessor.
//
// This is the mechanism behind kernel specialization (Chapter 4): the driver
// layer passes the `-D NAME=value` definitions for the current problem and
// hardware instance, and the preprocessor folds them into the kernel source
// before parsing. Supports object-like #define/#undef, the conditional
// family (#if/#ifdef/#ifndef/#elif/#else/#endif with defined() and integer
// expressions), #error, line continuations, and recursive macro expansion
// with self-reference protection — enough to express the dissertation's
// Appendix B "flexibly specializable kernel" pattern (CT_* toggles with
// default fallbacks).
#pragma once

#include <map>
#include <string>

namespace kspec::kcc {

// Expands `source` with `defines` pre-installed (as if passed via -D).
// Throws CompileError on malformed directives or #error.
std::string Preprocess(const std::string& source,
                       const std::map<std::string, std::string>& defines);

// Replaces // and /* */ comments with whitespace, preserving line structure.
std::string StripComments(const std::string& source);

// Source-to-source specialization: the alternative mechanism Section 4.4
// sketches for APIs that compile from source text (OpenCL-style) rather than
// accepting command-line definitions — "the source itself would be directly
// customized". Produces a self-contained source with the definitions baked
// in as #define lines, so compiling it with NO options yields the same
// binary as compiling the original with -D flags.
std::string SpecializeSource(const std::string& source,
                             const std::map<std::string, std::string>& defines);

}  // namespace kspec::kcc
