// Token definitions for the Kernel-C lexer.
#pragma once

#include <cstdint>
#include <string>

namespace kspec::kcc {

enum class Tok : std::uint8_t {
  kEof,
  kIdent,
  kIntLit,    // value in Token::int_value; unsignedness/width in suffix flags
  kFloatLit,  // value in Token::float_value; kIsFloat32 when 'f' suffix
  // Punctuation / operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi, kColon, kQuestion, kDot,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kLess, kGreater, kLessEq, kGreaterEq, kEqEq, kBangEq,
  kAmpAmp, kPipePipe,
  kShl, kShr,
  kAssign,
  kPlusEq, kMinusEq, kStarEq, kSlashEq, kPercentEq,
  kAmpEq, kPipeEq, kCaretEq, kShlEq, kShrEq,
  kPlusPlus, kMinusMinus,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;
  std::uint64_t int_value = 0;
  double float_value = 0;
  bool is_unsigned = false;  // integer literal had a 'u' suffix
  bool is_wide = false;      // integer literal had an 'll'/'l' suffix
  bool is_f32 = false;       // float literal had an 'f' suffix
  int line = 0;
  int col = 0;
};

const char* TokName(Tok t);

}  // namespace kspec::kcc
