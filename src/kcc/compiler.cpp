#include "kcc/compiler.hpp"

#include "kcc/lower.hpp"
#include "kcc/parser.hpp"
#include "kcc/passes.hpp"
#include "kcc/preprocess.hpp"
#include "kcc/regalloc.hpp"
#include "kcc/sema.hpp"
#include "kcc/unroll.hpp"
#include "support/str.hpp"
#include "support/timer.hpp"

namespace kspec::kcc {

const vgpu::CompiledKernel* CompiledModule::FindKernel(const std::string& name) const {
  for (const auto& k : kernels) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

const ConstantInfo* CompiledModule::FindConstant(const std::string& name) const {
  for (const auto& c : constants) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string DefinesToString(const std::map<std::string, std::string>& defines) {
  std::string out;
  for (const auto& [k, v] : defines) {
    if (!out.empty()) out += ' ';
    out += "-D " + k + "=" + v;
  }
  return out;
}

CompiledModule CompileModule(const std::string& source, const CompileOptions& opts) {
  WallTimer timer;

  std::string preprocessed = Preprocess(source, opts.defines);
  ModuleAst ast = Parse(preprocessed);
  Analyze(ast);

  CompiledModule mod;
  unsigned const_end = 0;
  for (const auto& c : ast.constants) {
    ConstantInfo info;
    info.name = c.name;
    info.elem = ScalarToIr(c.elem);
    info.count = c.folded_size;
    info.offset = c.offset;
    info.bytes = static_cast<unsigned>(c.folded_size * ScalarSize(c.elem));
    const_end = std::max(const_end, info.offset + info.bytes);
    mod.constants.push_back(info);
  }
  mod.const_bytes = const_end;
  for (const auto& t : ast.textures) mod.textures.push_back(t.name);

  for (auto& kdecl : ast.kernels) {
    UnrollResult unrolled = UnrollLoops(kdecl, opts.enable_unroll ? opts.max_unroll : 1);
    ScalarizeLocalArrays(kdecl);
    // Transformations introduced new variables/literals; re-check to keep the
    // tree consistent (and to catch transformation bugs early).
    AnalyzeKernel(ast, kdecl);

    LoweredKernel low = Lower(ast, kdecl);

    PassStats passes;
    if (opts.optimize) {
      PassOptions pass_opts;
      pass_opts.strength_reduction = opts.enable_strength_reduction;
      pass_opts.cse = opts.enable_cse;
      passes = Optimize(low.code, low.vreg_types, pass_opts);
    }
    AllocResult alloc = AllocateRegisters(low.code, low.vreg_types);

    vgpu::CompiledKernel k;
    k.name = low.name;
    k.code = std::move(low.code);
    k.params = std::move(low.params);
    k.num_vregs = low.num_vregs;
    k.static_smem_bytes = low.static_smem_bytes;
    k.ilp_at_pc = std::move(alloc.ilp_at_pc);
    k.stats.reg_count = alloc.reg_count;
    k.stats.static_instrs = static_cast<int>(k.code.size());
    k.stats.unrolled_loops = unrolled.loops_unrolled;
    k.stats.folded_consts = passes.folded_consts;
    k.stats.strength_reduced = passes.strength_reduced;

    std::string listing = Format(
        "// MiniPTX for kernel %s\n"
        "// %s\n"
        "// regs/thread: %d, static smem: %u bytes, instrs: %d, "
        "unrolled loops: %d, folded: %d, strength-reduced: %d\n",
        k.name.c_str(), DefinesToString(opts.defines).c_str(), k.stats.reg_count,
        k.static_smem_bytes, k.stats.static_instrs, k.stats.unrolled_loops,
        k.stats.folded_consts, k.stats.strength_reduced);
    listing += ".entry " + k.name + "(";
    for (std::size_t p = 0; p < k.params.size(); ++p) {
      if (p) listing += ", ";
      listing += Format(".param .%s %s", vgpu::TypeName(k.params[p].type),
                        k.params[p].name.c_str());
    }
    listing += ")\n{\n";
    listing += vgpu::Disassemble(k.code);
    listing += "}\n";
    k.listing = std::move(listing);

    mod.kernels.push_back(std::move(k));
  }

  mod.compile_millis = timer.ElapsedMillis();
  return mod;
}

}  // namespace kspec::kcc
