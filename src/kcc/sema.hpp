// Semantic analysis for Kernel-C.
//
// Types every expression, inserts implicit conversions as explicit Cast
// nodes, resolves identifiers against lexical scopes (shadowing is rejected:
// the unroller substitutes induction variables by name), validates intrinsic
// calls, checks lvalues and const-ness, and folds the sizes of __shared__,
// __constant__, and local array declarations — which must be compile-time
// constants, exactly the restriction kernel specialization exists to relax
// (Section 2.4).
#pragma once

#include <optional>

#include "kcc/ast.hpp"

namespace kspec::kcc {

// Analyzes the whole module in place. Throws CompileError on any violation.
void Analyze(ModuleAst& module);

// Re-checks a single kernel after AST transformations (unroll/scalarize);
// `module` provides the constant-array symbols.
void AnalyzeKernel(ModuleAst& module, KernelDecl& kernel);

// AST-level constant folding. Returns a literal node when `e` folds, or
// nullptr when it does not; never mutates `e`.
ExprPtr TryFold(const Expr& e);

// Folds `e` in place (recursively folding children first). The node is
// replaced by a literal when possible.
void FoldInPlace(ExprPtr& e);

// Folds statements in place (expressions inside them).
void FoldStmt(StmtPtr& s);

// Returns the value of `e` as a compile-time integer constant after folding,
// or std::nullopt.
std::optional<std::int64_t> EvalConstInt(const Expr& e);

}  // namespace kspec::kcc
