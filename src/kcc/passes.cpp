#include "kcc/passes.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/math.hpp"
#include "support/status.hpp"

namespace kspec::kcc {

namespace {

using vgpu::CmpOp;
using vgpu::Instr;
using vgpu::Opcode;
using vgpu::Operand;
using vgpu::Type;

bool IsPure(Opcode op) {
  switch (op) {
    case Opcode::kMov: case Opcode::kSreg:
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul: case Opcode::kDiv:
    case Opcode::kRem: case Opcode::kMul24: case Opcode::kMad:
    case Opcode::kMin: case Opcode::kMax: case Opcode::kNeg: case Opcode::kAbs:
    case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor: case Opcode::kNot:
    case Opcode::kShl: case Opcode::kShr:
    case Opcode::kSqrt: case Opcode::kRsqrt: case Opcode::kFloor: case Opcode::kCeil:
    case Opcode::kExp: case Opcode::kLog: case Opcode::kSin: case Opcode::kCos:
    case Opcode::kSetp: case Opcode::kSel: case Opcode::kCvt:
      return true;
    case Opcode::kLd:
    case Opcode::kTex2D:
    case Opcode::kTex1D:
      return true;  // no side effects; removable when the result is dead
    default:
      return false;
  }
}

// Sreg depends on the thread, so it is pure-but-not-constant; kLd reads
// memory. Neither is const-evaluable.
bool IsConstEvaluable(Opcode op) {
  return IsPure(op) && op != Opcode::kSreg && op != Opcode::kLd &&
         op != Opcode::kTex2D && op != Opcode::kTex1D;
}

bool IsCommutative(Opcode op) {
  switch (op) {
    case Opcode::kAdd: case Opcode::kMul: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kXor: case Opcode::kMin: case Opcode::kMax: case Opcode::kMul24:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool EvalConstInstr(const Instr& i, std::uint64_t a, std::uint64_t b, std::uint64_t c,
                    std::uint64_t* out) {
  using vgpu::DecodeF32;
  using vgpu::DecodeF64;
  using vgpu::DecodeI32;
  using vgpu::EncodeF32;
  using vgpu::EncodeF64;
  using vgpu::EncodeI32;

  if (!IsConstEvaluable(i.op)) return false;
  const Type t = i.op == Opcode::kSetp ? i.type : i.type;

  if (i.op == Opcode::kMov) {
    *out = a;
    return true;
  }
  if (i.op == Opcode::kSel) {
    *out = c ? a : b;
    return true;
  }
  if (i.op == Opcode::kCvt) {
    double d = 0;
    std::int64_t s = 0;
    bool src_f = vgpu::IsFloatType(i.type2);
    switch (i.type2) {
      case Type::kF32: d = DecodeF32(a); break;
      case Type::kF64: d = DecodeF64(a); break;
      case Type::kI32: s = DecodeI32(a); break;
      case Type::kU32: s = static_cast<std::uint32_t>(a); break;
      case Type::kPred: s = a ? 1 : 0; break;
      default: s = static_cast<std::int64_t>(a); break;
    }
    double v = src_f ? d : (i.type2 == Type::kU64 ? static_cast<double>(a) : static_cast<double>(s));
    switch (i.type) {
      case Type::kF32: *out = EncodeF32(static_cast<float>(v)); return true;
      case Type::kF64: *out = EncodeF64(v); return true;
      case Type::kPred: *out = src_f ? (d != 0) : (s != 0); return true;
      case Type::kI32:
        *out = EncodeI32(src_f ? static_cast<std::int32_t>(d) : static_cast<std::int32_t>(s));
        return true;
      case Type::kU32:
        *out = src_f ? static_cast<std::uint32_t>(static_cast<std::int64_t>(d))
                     : static_cast<std::uint32_t>(s);
        return true;
      default:
        *out = src_f ? static_cast<std::uint64_t>(static_cast<std::int64_t>(d))
                     : (i.type2 == Type::kU64 ? a : static_cast<std::uint64_t>(s));
        return true;
    }
  }

  if (t == Type::kF32 || t == Type::kF64) {
    const bool f32 = t == Type::kF32;
    double x = f32 ? DecodeF32(a) : DecodeF64(a);
    double y = f32 ? DecodeF32(b) : DecodeF64(b);
    double z = f32 ? DecodeF32(c) : DecodeF64(c);
    if (i.op == Opcode::kSetp) {
      bool r;
      switch (i.cmp) {
        case CmpOp::kEq: r = x == y; break;
        case CmpOp::kNe: r = x != y; break;
        case CmpOp::kLt: r = x < y; break;
        case CmpOp::kLe: r = x <= y; break;
        case CmpOp::kGt: r = x > y; break;
        default: r = x >= y; break;
      }
      *out = r;
      return true;
    }
    double r;
    switch (i.op) {
      case Opcode::kAdd: r = x + y; break;
      case Opcode::kSub: r = x - y; break;
      case Opcode::kMul: r = x * y; break;
      case Opcode::kDiv: r = x / y; break;
      case Opcode::kRem: r = std::fmod(x, y); break;
      case Opcode::kMad: r = x * y + z; break;
      case Opcode::kMin: r = std::min(x, y); break;
      case Opcode::kMax: r = std::max(x, y); break;
      case Opcode::kNeg: r = -x; break;
      case Opcode::kAbs: r = std::fabs(x); break;
      case Opcode::kSqrt: r = std::sqrt(x); break;
      case Opcode::kRsqrt: r = 1.0 / std::sqrt(x); break;
      case Opcode::kFloor: r = std::floor(x); break;
      case Opcode::kCeil: r = std::ceil(x); break;
      case Opcode::kExp: r = std::exp(x); break;
      case Opcode::kLog: r = std::log(x); break;
      case Opcode::kSin: r = std::sin(x); break;
      case Opcode::kCos: r = std::cos(x); break;
      default: return false;
    }
    *out = f32 ? EncodeF32(static_cast<float>(r)) : EncodeF64(r);
    return true;
  }

  // Integer / predicate.
  const bool is64 = t == Type::kI64 || t == Type::kU64;
  const bool sgn = t == Type::kI32 || t == Type::kI64;
  auto norm = [&](std::uint64_t v) -> std::uint64_t {
    if (t == Type::kPred) return v ? 1 : 0;
    if (is64) return v;
    if (sgn) return EncodeI32(static_cast<std::int32_t>(static_cast<std::uint32_t>(v)));
    return static_cast<std::uint32_t>(v);
  };
  auto sval = [&](std::uint64_t v) -> std::int64_t {
    return is64 ? static_cast<std::int64_t>(v) : DecodeI32(v);
  };
  auto uval = [&](std::uint64_t v) -> std::uint64_t {
    return is64 ? v : static_cast<std::uint32_t>(v);
  };

  if (i.op == Opcode::kSetp) {
    bool r;
    if (sgn) {
      std::int64_t x = sval(a), y = sval(b);
      switch (i.cmp) {
        case CmpOp::kEq: r = x == y; break;
        case CmpOp::kNe: r = x != y; break;
        case CmpOp::kLt: r = x < y; break;
        case CmpOp::kLe: r = x <= y; break;
        case CmpOp::kGt: r = x > y; break;
        default: r = x >= y; break;
      }
    } else {
      std::uint64_t x = uval(a), y = uval(b);
      switch (i.cmp) {
        case CmpOp::kEq: r = x == y; break;
        case CmpOp::kNe: r = x != y; break;
        case CmpOp::kLt: r = x < y; break;
        case CmpOp::kLe: r = x <= y; break;
        case CmpOp::kGt: r = x > y; break;
        default: r = x >= y; break;
      }
    }
    *out = r;
    return true;
  }

  const unsigned width = is64 ? 64 : 32;
  switch (i.op) {
    case Opcode::kAdd: *out = norm(a + b); return true;
    case Opcode::kSub: *out = norm(a - b); return true;
    case Opcode::kMul: *out = norm(a * b); return true;
    case Opcode::kMul24: {
      std::uint64_t x = a & 0xffffffu, y = b & 0xffffffu;
      if (sgn) {
        std::int64_t sx = static_cast<std::int64_t>(x << 40) >> 40;
        std::int64_t sy = static_cast<std::int64_t>(y << 40) >> 40;
        *out = norm(static_cast<std::uint64_t>(sx * sy));
      } else {
        *out = norm(x * y);
      }
      return true;
    }
    case Opcode::kMad: *out = norm(a * b + c); return true;
    case Opcode::kDiv:
      if (uval(b) == 0) return false;
      *out = norm(sgn ? static_cast<std::uint64_t>(sval(a) / sval(b)) : uval(a) / uval(b));
      return true;
    case Opcode::kRem:
      if (uval(b) == 0) return false;
      *out = norm(sgn ? static_cast<std::uint64_t>(sval(a) % sval(b)) : uval(a) % uval(b));
      return true;
    case Opcode::kMin:
      *out = norm(sgn ? static_cast<std::uint64_t>(std::min(sval(a), sval(b)))
                      : std::min(uval(a), uval(b)));
      return true;
    case Opcode::kMax:
      *out = norm(sgn ? static_cast<std::uint64_t>(std::max(sval(a), sval(b)))
                      : std::max(uval(a), uval(b)));
      return true;
    case Opcode::kNeg: *out = norm(~a + 1); return true;
    case Opcode::kAbs: {
      std::int64_t v = sval(a);
      *out = norm(static_cast<std::uint64_t>(v < 0 ? -v : v));
      return true;
    }
    case Opcode::kAnd: *out = norm(a & b); return true;
    case Opcode::kOr: *out = norm(a | b); return true;
    case Opcode::kXor: *out = norm(a ^ b); return true;
    case Opcode::kNot: *out = t == Type::kPred ? (a ? 0 : 1) : norm(~a); return true;
    case Opcode::kShl:
      *out = b >= width ? 0 : norm(a << b);
      return true;
    case Opcode::kShr:
      if (sgn) {
        std::int64_t v = sval(a);
        *out = b >= width ? norm(static_cast<std::uint64_t>(v < 0 ? -1 : 0))
                          : norm(static_cast<std::uint64_t>(v >> b));
      } else {
        *out = b >= width ? 0 : norm(uval(a) >> b);
      }
      return true;
    default:
      return false;
  }
}

namespace {

// Basic-block leader computation.
std::vector<int> BlockStarts(const std::vector<Instr>& code) {
  std::set<int> leaders;
  leaders.insert(0);
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& i = code[pc];
    if (i.op == Opcode::kBra || i.op == Opcode::kBraPred || i.op == Opcode::kExit) {
      leaders.insert(static_cast<int>(pc) + 1);
    }
    if (i.op == Opcode::kBra || i.op == Opcode::kBraPred) {
      leaders.insert(i.target);
      if (i.reconv >= 0) leaders.insert(i.reconv);
    }
    if (i.op == Opcode::kBarSync) leaders.insert(static_cast<int>(pc) + 1);
  }
  std::vector<int> out;
  for (int l : leaders) {
    if (l >= 0 && l <= static_cast<int>(code.size())) out.push_back(l);
  }
  if (out.empty() || out.back() != static_cast<int>(code.size())) {
    out.push_back(static_cast<int>(code.size()));
  }
  return out;
}

class Optimizer {
 public:
  Optimizer(std::vector<Instr>& code, const std::vector<Type>& vreg_types,
            const PassOptions& options)
      : code_(code), types_(vreg_types), options_(options) {}

  PassStats Run() {
    for (int round = 0; round < 3; ++round) {
      LocalPropagateFoldCse();
      RemoveUnreachable();
      Dce();
    }
    Compact();
    return stats_;
  }

 private:
  // ---- local constant/copy propagation + folding + strength red. + CSE ----
  void LocalPropagateFoldCse() {
    std::vector<int> starts = BlockStarts(code_);
    for (std::size_t b = 0; b + 1 < starts.size(); ++b) {
      BlockPass(starts[b], starts[b + 1]);
    }
  }

  struct CseEntry {
    Opcode op;
    Type type;
    Type type2;
    CmpOp cmp;
    Operand a, b, c;
    int dst;
    int pc;  // where the value was defined
  };

  // Reusing a value defined far upstream extends its live range across
  // everything in between; past this distance recomputation is cheaper than
  // the register pressure (the rematerialization heuristic real GPU
  // compilers apply, which keeps heavily unrolled kernels allocatable).
  static constexpr int kCseReuseWindow = 96;

  static bool SameOperand(const Operand& x, const Operand& y) {
    if (x.kind != y.kind) return false;
    if (x.is_reg()) return x.reg == y.reg;
    if (x.is_imm()) return x.imm == y.imm;
    return true;
  }

  void BlockPass(int begin, int end) {
    std::map<int, std::uint64_t> consts;  // vreg -> immediate
    std::map<int, int> copies;            // vreg -> source vreg
    // vreg -> (base reg, byte offset) for u64 `add dst, base, imm` defs;
    // folded into ld/st address immediates.
    std::map<int, std::pair<int, std::uint64_t>> addrs;
    // vreg -> defining cvt (for conversion-chain collapsing).
    std::map<int, Instr> cvts;
    std::vector<CseEntry> cse;

    auto invalidate = [&](int reg) {
      consts.erase(reg);
      copies.erase(reg);
      addrs.erase(reg);
      cvts.erase(reg);
      for (auto it = copies.begin(); it != copies.end();) {
        if (it->second == reg) it = copies.erase(it);
        else ++it;
      }
      for (auto it = addrs.begin(); it != addrs.end();) {
        if (it->second.first == reg) it = addrs.erase(it);
        else ++it;
      }
      for (auto it = cvts.begin(); it != cvts.end();) {
        if (it->second.a.is_reg() && it->second.a.reg == reg) it = cvts.erase(it);
        else ++it;
      }
      for (auto it = cse.begin(); it != cse.end();) {
        bool kill = it->dst == reg || (it->a.is_reg() && it->a.reg == reg) ||
                    (it->b.is_reg() && it->b.reg == reg) ||
                    (it->c.is_reg() && it->c.reg == reg);
        if (kill) it = cse.erase(it);
        else ++it;
      }
    };

    auto subst = [&](Operand& o) {
      if (!o.is_reg()) return;
      auto cp = copies.find(o.reg);
      if (cp != copies.end()) o.reg = cp->second;
      auto ct = consts.find(o.reg);
      if (ct != consts.end()) o = Operand::Imm(ct->second);
    };

    for (int pc = begin; pc < end; ++pc) {
      Instr& i = code_[pc];
      if (i.op == Opcode::kNop) continue;

      // Entries past the reuse window can never match again; pruning keeps
      // the CSE scan linear in huge unrolled blocks. (Entries are appended in
      // pc order, so expired ones sit at the front.)
      std::size_t expired = 0;
      while (expired < cse.size() && pc - cse[expired].pc > kCseReuseWindow) ++expired;
      if (expired) cse.erase(cse.begin(), cse.begin() + static_cast<std::ptrdiff_t>(expired));

      // The other fact maps are iterated by invalidate(); capping them keeps
      // the whole pass linear on multi-thousand-instruction unrolled blocks.
      // Dropping facts only forgoes optimization opportunities, never
      // correctness (straight-line temps are single-def, so stale entries are
      // rare anyway).
      constexpr std::size_t kFactCap = 768;
      if (copies.size() > kFactCap) copies.clear();
      if (addrs.size() > kFactCap) addrs.clear();
      if (cvts.size() > kFactCap) cvts.clear();
      if (consts.size() > 4 * kFactCap) consts.clear();

      subst(i.a);
      if (i.op != Opcode::kSreg) {
        subst(i.b);
        subst(i.c);
      }
      // Keep ld/st byte-offset immediates as immediates (b operand).

      // Canonicalize commutative ops: immediate to the right.
      if (IsCommutative(i.op) && i.a.is_imm() && i.b.is_reg()) std::swap(i.a, i.b);

      // Fold `add.u64 r, base, imm` address arithmetic into the ld/st byte
      // offset (what PTX's [reg+imm] addressing mode exists for).
      if ((i.op == Opcode::kLd || i.op == Opcode::kSt) && i.a.is_reg()) {
        auto it = addrs.find(i.a.reg);
        if (it != addrs.end()) {
          i.a = Operand::Reg(it->second.first);
          i.b = Operand::Imm(i.b.imm + it->second.second);
        }
      }

      // Collapse 32->64->64 integer conversion chains (e.g. cvt.s64.s32
      // followed by cvt.u64.s64) into a single conversion; both orders of
      // extension agree with the direct conversion.
      if (i.op == Opcode::kCvt && i.a.is_reg()) {
        auto it = cvts.find(i.a.reg);
        if (it != cvts.end()) {
          const Instr& inner = it->second;
          bool outer64 = i.type == Type::kI64 || i.type == Type::kU64;
          bool mid64 = inner.type == Type::kI64 || inner.type == Type::kU64;
          bool src32 = inner.type2 == Type::kI32 || inner.type2 == Type::kU32;
          if (outer64 && mid64 && src32 && i.type2 == inner.type) {
            i.type2 = inner.type2;
            i.a = inner.a;
          }
        }
      }

      // Constant-fold branches.
      if (i.op == Opcode::kBraPred && i.a.is_imm()) {
        bool taken = (i.a.imm != 0) != i.neg;
        if (taken) {
          Instr br = Instr::Make(Opcode::kBra, Type::kI32, -1);
          br.target = i.target;
          i = br;
        } else {
          i = Instr::Make(Opcode::kNop, Type::kI32, -1);
        }
        ++stats_.folded_consts;
        continue;
      }

      if (i.dst < 0) continue;

      // Full constant evaluation.
      bool all_imm = (!i.a.is_reg()) && (!i.b.is_reg()) && (!i.c.is_reg()) &&
                     i.op != Opcode::kSreg && i.op != Opcode::kLd;
      if (all_imm && IsConstEvaluable(i.op) && i.op != Opcode::kMov) {
        std::uint64_t out;
        if (EvalConstInstr(i, i.a.imm, i.b.imm, i.c.imm, &out)) {
          i = Instr::Make(Opcode::kMov, i.type, i.dst, Operand::Imm(out));
          ++stats_.folded_consts;
        }
      }

      if (options_.strength_reduction) StrengthReduce(i);

      // CSE lookup (pure, non-load, non-mov), bounded by reuse distance.
      if (options_.cse && IsConstEvaluable(i.op) && i.op != Opcode::kMov) {
        for (const auto& e : cse) {
          if (pc - e.pc <= kCseReuseWindow && e.op == i.op && e.type == i.type &&
              e.type2 == i.type2 && e.cmp == i.cmp && SameOperand(e.a, i.a) &&
              SameOperand(e.b, i.b) && SameOperand(e.c, i.c)) {
            i = Instr::Make(Opcode::kMov, i.type, i.dst, Operand::Reg(e.dst));
            ++stats_.cse_hits;
            break;
          }
        }
      }

      // Kill stale facts about the overwritten register, then record the new
      // ones. A definition whose operands include its own dst (e.g. the loop
      // `add r, r, 1`) is never a valid CSE source: the recorded operands
      // would name the post-update value.
      int dst = i.dst;
      invalidate(dst);
      bool self_ref = (i.a.is_reg() && i.a.reg == dst) || (i.b.is_reg() && i.b.reg == dst) ||
                      (i.c.is_reg() && i.c.reg == dst);
      if (IsConstEvaluable(i.op) && i.op != Opcode::kMov && !self_ref) {
        cse.push_back({i.op, i.type, i.type2, i.cmp, i.a, i.b, i.c, dst, pc});
      }
      if (i.op == Opcode::kMov) {
        if (i.a.is_imm()) {
          consts[dst] = i.a.imm;
        } else if (i.a.is_reg() && i.a.reg != dst) {
          copies[dst] = i.a.reg;
        }
      }
      if (i.op == Opcode::kAdd && i.type == Type::kU64 && i.a.is_reg() && i.b.is_imm() &&
          !self_ref) {
        // Resolve transitively so chained adds fold to one base.
        int base = i.a.reg;
        std::uint64_t off = i.b.imm;
        auto it = addrs.find(base);
        if (it != addrs.end()) {
          off += it->second.second;
          base = it->second.first;
        }
        addrs[dst] = {base, off};
      }
      if (i.op == Opcode::kCvt && !self_ref) cvts[dst] = i;
    }
  }

  void StrengthReduce(Instr& i) {
    const bool is_int = vgpu::IsIntType(i.type);
    if (!is_int) return;
    const bool sgn = vgpu::IsSignedInt(i.type);

    auto imm_val = [&](const Operand& o) -> std::uint64_t {
      if (i.type == Type::kI32) {
        return static_cast<std::uint64_t>(static_cast<std::uint32_t>(o.imm));
      }
      return o.imm;
    };

    if (i.op == Opcode::kMul && i.b.is_imm()) {
      std::uint64_t v = imm_val(i.b);
      if (v == 0) {
        i = Instr::Make(Opcode::kMov, i.type, i.dst, Operand::Imm(0));
        ++stats_.strength_reduced;
      } else if (v == 1) {
        i = Instr::Make(Opcode::kMov, i.type, i.dst, i.a);
        ++stats_.strength_reduced;
      } else if (IsPow2(v)) {
        i.op = Opcode::kShl;
        i.b = Operand::Imm(ILog2(v));
        ++stats_.strength_reduced;
      }
      return;
    }
    if ((i.op == Opcode::kDiv || i.op == Opcode::kRem) && i.b.is_imm() && !sgn) {
      std::uint64_t v = imm_val(i.b);
      if (v != 0 && IsPow2(v)) {
        if (i.op == Opcode::kDiv) {
          i.op = Opcode::kShr;
          i.b = Operand::Imm(ILog2(v));
        } else {
          i.op = Opcode::kAnd;
          i.b = Operand::Imm(v - 1);
        }
        ++stats_.strength_reduced;
      }
      return;
    }
    if ((i.op == Opcode::kAdd || i.op == Opcode::kSub) && i.b.is_imm() && imm_val(i.b) == 0) {
      i = Instr::Make(Opcode::kMov, i.type, i.dst, i.a);
      ++stats_.strength_reduced;
      return;
    }
    if ((i.op == Opcode::kShl || i.op == Opcode::kShr) && i.b.is_imm() && i.b.imm == 0) {
      i = Instr::Make(Opcode::kMov, i.type, i.dst, i.a);
      ++stats_.strength_reduced;
      return;
    }
  }

  // ---- unreachable code removal ----
  void RemoveUnreachable() {
    std::vector<bool> reachable(code_.size(), false);
    std::vector<int> work{0};
    while (!work.empty()) {
      int pc = work.back();
      work.pop_back();
      if (pc < 0 || pc >= static_cast<int>(code_.size()) || reachable[pc]) continue;
      reachable[pc] = true;
      const Instr& i = code_[pc];
      if (i.op == Opcode::kExit) continue;
      if (i.op == Opcode::kBra) {
        work.push_back(i.target);
        continue;
      }
      if (i.op == Opcode::kBraPred) {
        work.push_back(i.target);
        work.push_back(pc + 1);
        if (i.reconv >= 0) work.push_back(i.reconv);
        continue;
      }
      work.push_back(pc + 1);
    }
    for (std::size_t pc = 0; pc < code_.size(); ++pc) {
      if (!reachable[pc] && code_[pc].op != Opcode::kNop) {
        code_[pc] = Instr::Make(Opcode::kNop, Type::kI32, -1);
      }
    }
  }

  // ---- dead code elimination ----
  void Dce() {
    // Dense use counts indexed by vreg (types_ sizes the register file).
    std::vector<int> uses(types_.size() + 1, 0);
    auto add_uses = [&](const Instr& i, int delta) {
      if (i.a.is_reg()) uses[i.a.reg] += delta;
      if (i.b.is_reg()) uses[i.b.reg] += delta;
      if (i.c.is_reg()) uses[i.c.reg] += delta;
    };
    for (const auto& i : code_) {
      if (i.op == Opcode::kNop) continue;
      add_uses(i, 1);
    }
    bool changed = true;
    while (changed) {
      changed = false;
      // Backward scan: a dead chain's tail dies first, freeing its inputs in
      // the same pass, so chains disappear in one sweep instead of one pass
      // per link.
      for (auto it = code_.rbegin(); it != code_.rend(); ++it) {
        Instr& i = *it;
        if (i.op == Opcode::kNop || i.dst < 0) continue;
        if (!IsPure(i.op)) continue;
        if (uses[i.dst] != 0) continue;
        // Self-moves are also dead.
        add_uses(i, -1);
        i = Instr::Make(Opcode::kNop, Type::kI32, -1);
        ++stats_.dce_removed;
        changed = true;
      }
    }
    // Remove mov r, r.
    for (auto& i : code_) {
      if (i.op == Opcode::kMov && i.a.is_reg() && i.a.reg == i.dst) {
        i = Instr::Make(Opcode::kNop, Type::kI32, -1);
        ++stats_.dce_removed;
      }
    }
  }

  // ---- compaction: drop nops, remap branch targets ----
  void Compact() {
    // Branches to the immediately following instruction become nops first.
    for (std::size_t pc = 0; pc < code_.size(); ++pc) {
      Instr& i = code_[pc];
      if (i.op == Opcode::kBra) {
        // Find next non-nop after pc.
        std::size_t next = pc + 1;
        while (next < code_.size() && code_[next].op == Opcode::kNop) ++next;
        std::size_t tgt = static_cast<std::size_t>(i.target);
        while (tgt < code_.size() && code_[tgt].op == Opcode::kNop) ++tgt;
        if (tgt == next) i = Instr::Make(Opcode::kNop, Type::kI32, -1);
      }
    }

    std::vector<int> remap(code_.size() + 1, 0);
    int new_pc = 0;
    for (std::size_t pc = 0; pc < code_.size(); ++pc) {
      remap[pc] = new_pc;
      if (code_[pc].op != Opcode::kNop) ++new_pc;
    }
    remap[code_.size()] = new_pc;

    std::vector<Instr> out;
    out.reserve(new_pc);
    for (std::size_t pc = 0; pc < code_.size(); ++pc) {
      if (code_[pc].op == Opcode::kNop) continue;
      Instr i = code_[pc];
      if (i.op == Opcode::kBra || i.op == Opcode::kBraPred) {
        i.target = remap[std::min<std::size_t>(i.target, code_.size())];
        if (i.reconv >= 0) i.reconv = remap[std::min<std::size_t>(i.reconv, code_.size())];
      }
      out.push_back(i);
    }
    code_ = std::move(out);
  }

  std::vector<Instr>& code_;
  const std::vector<Type>& types_;
  PassOptions options_;
  PassStats stats_;
};

}  // namespace

PassStats Optimize(std::vector<Instr>& code, const std::vector<Type>& vreg_types,
                   const PassOptions& options) {
  return Optimizer(code, vreg_types, options).Run();
}

}  // namespace kspec::kcc
