// Abstract syntax tree for Kernel-C.
//
// The tree is mutable and clonable because the front-end performs two
// AST-to-AST transformations before lowering: loop unrolling (which clones
// loop bodies with the induction variable substituted by literals) and local
// array scalarization (which turns `float acc[RB];` into RB scalar variables
// once every index is a compile-time constant — the register blocking
// mechanism described in Sections 2.3 and 5.2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vgpu/isa.hpp"

namespace kspec::kcc {

// Scalar value categories of the source language.
enum class Scalar : std::uint8_t {
  kVoid, kBool, kInt, kUint, kLong, kUlong, kFloat, kDouble,
};

const char* ScalarName(Scalar s);
vgpu::Type ScalarToIr(Scalar s);
std::size_t ScalarSize(Scalar s);
bool IsFloatScalar(Scalar s);
bool IsSignedScalar(Scalar s);

// A (possibly pointer) type. Pointers carry the address space of their
// pointee; Kernel-C pointers always point to scalars.
struct TypeRef {
  Scalar scalar = Scalar::kVoid;
  bool is_pointer = false;
  vgpu::Space space = vgpu::Space::kGlobal;

  bool operator==(const TypeRef&) const = default;
  std::string ToString() const;

  static TypeRef Value(Scalar s) { return {s, false, vgpu::Space::kGlobal}; }
  static TypeRef Pointer(Scalar s, vgpu::Space sp) { return {s, true, sp}; }
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  kIntLit,
  kFloatLit,
  kVarRef,
  kSreg,     // threadIdx.x and friends
  kUnary,
  kBinary,
  kAssign,   // also compound assignment
  kTernary,
  kCall,     // intrinsic call
  kIndex,    // base[index] — base is a pointer, shared/local array
  kCast,
};

enum class UnOp : std::uint8_t { kNeg, kNot, kBitNot, kPlus };
enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLogAnd, kLogOr,
};
const char* BinOpName(BinOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  TypeRef type;  // filled in by sema
  int line = 0;

  // kIntLit / kFloatLit
  std::uint64_t int_value = 0;
  double float_value = 0;

  // kVarRef / kCall name
  std::string name;

  // kSreg
  vgpu::SpecialReg sreg = vgpu::SpecialReg::kTidX;

  // operators
  UnOp un_op = UnOp::kNeg;
  BinOp bin_op = BinOp::kAdd;
  BinOp assign_op = BinOp::kAdd;  // for compound assignment
  bool is_compound = false;

  // children: unary (a), binary (a,b), assign (a=target, b=value),
  // ternary (a,b,c), index (a=base, b=index), cast (a), call (args)
  ExprPtr a, b, c;
  std::vector<ExprPtr> args;

  ExprPtr Clone() const;

  bool IsIntConst() const { return kind == ExprKind::kIntLit; }
  std::int64_t AsInt() const { return static_cast<std::int64_t>(int_value); }
};

ExprPtr MakeIntLit(std::int64_t v, Scalar s = Scalar::kInt, int line = 0);
ExprPtr MakeFloatLit(double v, Scalar s = Scalar::kFloat, int line = 0);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  kDecl,        // scalar variable declaration(s)
  kArrayDecl,   // __shared__ or local (register) array
  kExpr,
  kIf,
  kFor,
  kWhile,
  kReturn,
  kBlock,
  kSync,        // __syncthreads()
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct VarDecl {
  std::string name;
  TypeRef type;
  ExprPtr init;  // may be null
  bool is_const = false;
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  // kDecl
  std::vector<VarDecl> decls;

  // kArrayDecl
  std::string array_name;
  TypeRef array_elem;           // element scalar type
  ExprPtr array_size;           // must fold to a constant (null when dynamic)
  vgpu::Space array_space = vgpu::Space::kShared;  // kShared or kLocal (register array)
  bool array_dynamic = false;   // extern __shared__ T name[]; sized at launch

  // kExpr / kReturn(void only)
  ExprPtr expr;

  // kIf
  ExprPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null

  // kFor
  StmtPtr init;   // decl or expr stmt, may be null
  ExprPtr step;   // may be null
  StmtPtr body;   // for/while body

  // kBlock
  std::vector<StmtPtr> stmts;

  StmtPtr Clone() const;
};

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

struct ParamDecl {
  std::string name;
  TypeRef type;
};

struct KernelDecl {
  std::string name;
  std::vector<ParamDecl> params;
  StmtPtr body;  // kBlock
  int line = 0;
};

struct ConstantDecl {
  std::string name;
  Scalar elem = Scalar::kFloat;
  ExprPtr size;        // element count; must fold to a constant
  std::int64_t folded_size = -1;  // filled by sema
  unsigned offset = 0;            // byte offset in the module constant segment
  int line = 0;
};

struct TextureDecl {
  std::string name;
  int line = 0;
};

struct ModuleAst {
  std::vector<ConstantDecl> constants;
  std::vector<TextureDecl> textures;
  std::vector<KernelDecl> kernels;
};

}  // namespace kspec::kcc
