// Recursive-descent parser for Kernel-C.
//
// The accepted language is a CUDA-C-shaped subset: `__kernel void f(...)`
// entry points, `__constant`/`__shared` array declarations, scalar and
// pointer types, full C expression syntax (including casts, the conditional
// operator, and compound assignment), `if`/`for`/`while`, early `return`, and
// the built-in thread geometry variables (threadIdx, blockIdx, blockDim,
// gridDim). `break`/`continue` are rejected with a diagnostic: the vgpu
// reconvergence model requires structured control flow, matching the paper's
// kernels which never use them.
#pragma once

#include <string>

#include "kcc/ast.hpp"

namespace kspec::kcc {

// Parses preprocessed source into a module AST. Throws CompileError.
ModuleAst Parse(const std::string& source);

}  // namespace kspec::kcc
