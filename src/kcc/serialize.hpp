// Persistent cache artifacts: (de)serialization of CompiledModule.
//
// This is what lets a *second process* skip run-time compilation entirely
// (the KLARAPTOR-style cross-run amortization): a compiled specialization is
// written to disk once and any later Context pointed at the same cache_dir
// loads it back at shared-object-load speed.
//
// Artifact layout (all integers little-endian):
//   [0..7]   magic "KSPCMOD1"
//   [8..11]  u32 format version (kModuleFormatVersion)
//   [12..19] u64 FNV-1a checksum of the payload bytes
//   [20..27] u64 payload byte count
//   [28..]   payload: length-prefixed cache-key canonical text, then the module
//
// Deserialize throws SerializeError on any corruption, truncation, checksum
// mismatch, or version mismatch; cache consumers catch it and fall back to
// recompilation (never crash on a bad cache file).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kcc/compiler.hpp"

namespace kspec::kcc {

// Bump whenever the serialized layout of CompiledModule (or the key text)
// changes; older artifacts are then treated as misses and recompiled.
inline constexpr std::uint32_t kModuleFormatVersion = 1;

// Byte offset of the version field, for tests that forge a version bump.
inline constexpr std::size_t kFormatVersionOffset = 8;

// Serializes `mod` into a self-validating artifact. `key_text` is the
// ModuleCacheKey::CanonicalText() of the key the module was compiled under;
// it is embedded so readers can detect a hash-colliding artifact.
std::vector<std::uint8_t> Serialize(const CompiledModule& mod, const std::string& key_text = {});

// Parses an artifact produced by Serialize. If `key_text` is non-null it
// receives the embedded cache-key canonical text. Throws SerializeError on
// any malformed input.
CompiledModule Deserialize(std::span<const std::uint8_t> bytes, std::string* key_text = nullptr);

// Approximate in-memory footprint of a compiled module, used by the
// in-memory cache's LRU byte budget.
std::size_t ApproxModuleBytes(const CompiledModule& mod);

// ---------------------------------------------------------------------------
// Native-tier artifacts (.nso): a host shared object produced by the native
// backend, wrapped in the same self-validating envelope shape as .kmod so the
// disk cache and the netd ArtifactStore can treat both artifact kinds with
// one corrupt-quarantine policy. Layout mirrors the module artifact:
//   [0..7]   magic "KSPCNSO1"
//   [8..11]  u32 format version (kNativeFormatVersion)
//   [12..19] u64 FNV-1a checksum of the payload bytes
//   [20..27] u64 payload byte count
//   [28..]   payload: length-prefixed cache-key canonical text, then the
//            raw shared-object image
// The embedded key text lets readers detect hash-colliding artifacts; ABI /
// codegen compatibility of the shared object itself is validated separately
// at dlopen time (native::kNativeAbiVersion).

// Bump whenever the .nso envelope layout changes; older artifacts are then
// treated as misses and rebuilt.
inline constexpr std::uint32_t kNativeFormatVersion = 1;

// Byte offset of the .nso version field, for tests that forge a version bump.
inline constexpr std::size_t kNativeFormatVersionOffset = 8;

// Wraps a shared-object image in the .nso envelope.
std::vector<std::uint8_t> SerializeNative(std::span<const std::uint8_t> so_bytes,
                                          const std::string& key_text);

// Unwraps a .nso artifact back to the raw shared-object image. If `key_text`
// is non-null it receives the embedded cache-key canonical text. Throws
// SerializeError on any malformed input.
std::vector<std::uint8_t> DeserializeNative(std::span<const std::uint8_t> bytes,
                                            std::string* key_text = nullptr);

}  // namespace kspec::kcc
