#include "kcc/cache_key.hpp"

#include "support/serialize.hpp"
#include "support/str.hpp"

namespace kspec::kcc {

ModuleCacheKey ModuleCacheKey::Make(const std::string& source, const CompileOptions& opts,
                                    const std::string& device_name) {
  ModuleCacheKey key;
  key.source = source;
  key.defines = opts.defines;
  key.max_unroll = opts.max_unroll;
  key.optimize = opts.optimize;
  key.enable_unroll = opts.enable_unroll;
  key.enable_strength_reduction = opts.enable_strength_reduction;
  key.enable_cse = opts.enable_cse;
  key.device_name = device_name;
  return key;
}

CompileOptions ModuleCacheKey::Options() const {
  CompileOptions opts;
  opts.defines = defines;
  opts.max_unroll = max_unroll;
  opts.optimize = optimize;
  opts.enable_unroll = enable_unroll;
  opts.enable_strength_reduction = enable_strength_reduction;
  opts.enable_cse = enable_cse;
  return opts;
}

std::string ModuleCacheKey::CanonicalText() const {
  ByteWriter w;
  w.Str(source);
  w.U32(static_cast<std::uint32_t>(defines.size()));
  for (const auto& [name, value] : defines) {
    w.Str(name);
    w.Str(value);
  }
  w.I32(max_unroll);
  w.U8(static_cast<std::uint8_t>((optimize ? 1 : 0) | (enable_unroll ? 2 : 0) |
                                 (enable_strength_reduction ? 4 : 0) | (enable_cse ? 8 : 0)));
  w.Str(device_name);
  std::vector<std::uint8_t> bytes = w.Take();
  return std::string(bytes.begin(), bytes.end());
}

std::uint64_t ModuleCacheKey::Hash() const { return Fnv1a(CanonicalText()); }

std::string ModuleCacheKey::FileName() const {
  return Format("k%016llx.kmod", static_cast<unsigned long long>(Hash()));
}

std::string ModuleCacheKey::Describe() const {
  return Format("%s |unroll=%d|opt=%d%d%d%d|dev=%s", DefinesToString(defines).c_str(),
                max_unroll, optimize ? 1 : 0, enable_unroll ? 1 : 0,
                enable_strength_reduction ? 1 : 0, enable_cse ? 1 : 0, device_name.c_str());
}

}  // namespace kspec::kcc
