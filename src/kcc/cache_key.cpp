#include "kcc/cache_key.hpp"

#include "support/serialize.hpp"
#include "support/str.hpp"

namespace kspec::kcc {

ModuleCacheKey ModuleCacheKey::Make(const std::string& source, const CompileOptions& opts,
                                    const std::string& device_name) {
  ModuleCacheKey key;
  key.source = source;
  key.defines = opts.defines;
  key.max_unroll = opts.max_unroll;
  key.optimize = opts.optimize;
  key.enable_unroll = opts.enable_unroll;
  key.enable_strength_reduction = opts.enable_strength_reduction;
  key.enable_cse = opts.enable_cse;
  key.device_name = device_name;
  return key;
}

CompileOptions ModuleCacheKey::Options() const {
  CompileOptions opts;
  opts.defines = defines;
  opts.max_unroll = max_unroll;
  opts.optimize = optimize;
  opts.enable_unroll = enable_unroll;
  opts.enable_strength_reduction = enable_strength_reduction;
  opts.enable_cse = enable_cse;
  return opts;
}

std::string ModuleCacheKey::CanonicalText() const {
  ByteWriter w;
  w.Str(source);
  w.U32(static_cast<std::uint32_t>(defines.size()));
  for (const auto& [name, value] : defines) {
    w.Str(name);
    w.Str(value);
  }
  w.I32(max_unroll);
  w.U8(static_cast<std::uint8_t>((optimize ? 1 : 0) | (enable_unroll ? 2 : 0) |
                                 (enable_strength_reduction ? 4 : 0) | (enable_cse ? 8 : 0)));
  w.Str(device_name);
  std::vector<std::uint8_t> bytes = w.Take();
  return std::string(bytes.begin(), bytes.end());
}

ModuleCacheKey ModuleCacheKey::FromCanonicalText(std::string_view text) {
  ByteReader r(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  ModuleCacheKey key;
  key.source = r.Str();
  const std::uint32_t ndefines = r.U32();
  for (std::uint32_t i = 0; i < ndefines; ++i) {
    std::string name = r.Str();
    key.defines[std::move(name)] = r.Str();
  }
  key.max_unroll = r.I32();
  const std::uint8_t flags = r.U8();
  key.optimize = (flags & 1) != 0;
  key.enable_unroll = (flags & 2) != 0;
  key.enable_strength_reduction = (flags & 4) != 0;
  key.enable_cse = (flags & 8) != 0;
  key.device_name = r.Str();
  if (!r.AtEnd()) throw SerializeError("trailing bytes after cache key");
  if (flags > 15) throw SerializeError("unknown cache-key option flags");
  return key;
}

std::uint64_t ModuleCacheKey::Hash() const { return Fnv1a(CanonicalText()); }

std::string ModuleCacheKey::FileName() const {
  return Format("k%016llx.kmod", static_cast<unsigned long long>(Hash()));
}

std::string ModuleCacheKey::Describe() const {
  return Format("%s |unroll=%d|opt=%d%d%d%d|dev=%s", DefinesToString(defines).c_str(),
                max_unroll, optimize ? 1 : 0, enable_unroll ? 1 : 0,
                enable_strength_reduction ? 1 : 0, enable_cse ? 1 : 0, device_name.c_str());
}

}  // namespace kspec::kcc
