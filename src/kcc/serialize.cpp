#include "kcc/serialize.hpp"

#include <cstring>

#include "support/serialize.hpp"

namespace kspec::kcc {

namespace {

constexpr char kMagic[8] = {'K', 'S', 'P', 'C', 'M', 'O', 'D', '1'};

template <typename E>
E DecodeEnum(std::uint8_t raw, E max_value, const char* what) {
  if (raw > static_cast<std::uint8_t>(max_value)) {
    throw SerializeError(std::string("invalid ") + what + " value " + std::to_string(raw));
  }
  return static_cast<E>(raw);
}

void PutOperand(ByteWriter& w, const vgpu::Operand& op) {
  w.U8(static_cast<std::uint8_t>(op.kind));
  w.I32(op.reg);
  w.U64(op.imm);
}

vgpu::Operand GetOperand(ByteReader& r) {
  vgpu::Operand op;
  op.kind = DecodeEnum(r.U8(), vgpu::Operand::Kind::kImm, "operand kind");
  op.reg = r.I32();
  op.imm = r.U64();
  return op;
}

void PutInstr(ByteWriter& w, const vgpu::Instr& in) {
  w.U8(static_cast<std::uint8_t>(in.op));
  w.U8(static_cast<std::uint8_t>(in.type));
  w.U8(static_cast<std::uint8_t>(in.type2));
  w.U8(static_cast<std::uint8_t>(in.cmp));
  w.U8(static_cast<std::uint8_t>(in.space));
  w.U8(in.neg ? 1 : 0);
  w.I32(in.dst);
  PutOperand(w, in.a);
  PutOperand(w, in.b);
  PutOperand(w, in.c);
  w.I32(in.target);
  w.I32(in.reconv);
}

vgpu::Instr GetInstr(ByteReader& r) {
  vgpu::Instr in;
  in.op = DecodeEnum(r.U8(), vgpu::Opcode::kTex1D, "opcode");
  in.type = DecodeEnum(r.U8(), vgpu::Type::kF64, "type");
  in.type2 = DecodeEnum(r.U8(), vgpu::Type::kF64, "type2");
  in.cmp = DecodeEnum(r.U8(), vgpu::CmpOp::kGe, "cmp op");
  in.space = DecodeEnum(r.U8(), vgpu::Space::kParam, "space");
  in.neg = r.U8() != 0;
  in.dst = r.I32();
  in.a = GetOperand(r);
  in.b = GetOperand(r);
  in.c = GetOperand(r);
  in.target = r.I32();
  in.reconv = r.I32();
  return in;
}

void PutKernel(ByteWriter& w, const vgpu::CompiledKernel& k) {
  w.Str(k.name);
  w.U32(static_cast<std::uint32_t>(k.code.size()));
  for (const auto& in : k.code) PutInstr(w, in);
  w.U32(static_cast<std::uint32_t>(k.params.size()));
  for (const auto& p : k.params) {
    w.Str(p.name);
    w.U8(static_cast<std::uint8_t>(p.type));
  }
  w.I32(k.num_vregs);
  w.U32(k.static_smem_bytes);
  w.U32(static_cast<std::uint32_t>(k.ilp_at_pc.size()));
  for (float f : k.ilp_at_pc) w.F32(f);
  w.I32(k.stats.reg_count);
  w.I32(k.stats.static_instrs);
  w.I32(k.stats.unrolled_loops);
  w.I32(k.stats.folded_consts);
  w.I32(k.stats.strength_reduced);
  w.Str(k.listing);
}

vgpu::CompiledKernel GetKernel(ByteReader& r) {
  vgpu::CompiledKernel k;
  k.name = r.Str();
  std::uint32_t n_code = r.U32();
  k.code.reserve(n_code);
  for (std::uint32_t i = 0; i < n_code; ++i) k.code.push_back(GetInstr(r));
  std::uint32_t n_params = r.U32();
  k.params.reserve(n_params);
  for (std::uint32_t i = 0; i < n_params; ++i) {
    vgpu::KernelParam p;
    p.name = r.Str();
    p.type = DecodeEnum(r.U8(), vgpu::Type::kF64, "param type");
    k.params.push_back(std::move(p));
  }
  k.num_vregs = r.I32();
  k.static_smem_bytes = r.U32();
  std::uint32_t n_ilp = r.U32();
  k.ilp_at_pc.reserve(n_ilp);
  for (std::uint32_t i = 0; i < n_ilp; ++i) k.ilp_at_pc.push_back(r.F32());
  k.stats.reg_count = r.I32();
  k.stats.static_instrs = r.I32();
  k.stats.unrolled_loops = r.I32();
  k.stats.folded_consts = r.I32();
  k.stats.strength_reduced = r.I32();
  k.listing = r.Str();
  return k;
}

}  // namespace

std::vector<std::uint8_t> Serialize(const CompiledModule& mod, const std::string& key_text) {
  ByteWriter payload;
  payload.Str(key_text);
  payload.U32(static_cast<std::uint32_t>(mod.kernels.size()));
  for (const auto& k : mod.kernels) PutKernel(payload, k);
  payload.U32(static_cast<std::uint32_t>(mod.constants.size()));
  for (const auto& c : mod.constants) {
    payload.Str(c.name);
    payload.U8(static_cast<std::uint8_t>(c.elem));
    payload.I64(c.count);
    payload.U32(c.offset);
    payload.U32(c.bytes);
  }
  payload.U32(static_cast<std::uint32_t>(mod.textures.size()));
  for (const auto& t : mod.textures) payload.Str(t);
  payload.U32(mod.const_bytes);
  payload.F64(mod.compile_millis);

  ByteWriter out;
  out.Raw(kMagic, sizeof(kMagic));
  out.U32(kModuleFormatVersion);
  out.U64(Fnv1aBytes(payload.bytes().data(), payload.size()));
  out.U64(payload.size());
  out.Raw(payload.bytes().data(), payload.size());
  return out.Take();
}

CompiledModule Deserialize(std::span<const std::uint8_t> bytes, std::string* key_text) {
  ByteReader header(bytes);
  char magic[8];
  if (header.remaining() < sizeof(magic)) throw SerializeError("artifact shorter than header");
  for (char& c : magic) c = static_cast<char>(header.U8());
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw SerializeError("bad magic: not a kspec module artifact");
  }
  std::uint32_t version = header.U32();
  if (version != kModuleFormatVersion) {
    throw SerializeError("format version " + std::to_string(version) + " != expected " +
                         std::to_string(kModuleFormatVersion));
  }
  std::uint64_t checksum = header.U64();
  std::uint64_t payload_size = header.U64();
  if (payload_size != header.remaining()) {
    throw SerializeError("payload size mismatch: header says " + std::to_string(payload_size) +
                         ", file has " + std::to_string(header.remaining()));
  }
  std::span<const std::uint8_t> payload = header.Rest();
  if (Fnv1aBytes(payload.data(), payload.size()) != checksum) {
    throw SerializeError("content checksum mismatch (corrupt artifact)");
  }

  ByteReader r(payload);
  std::string stored_key = r.Str();
  if (key_text) *key_text = std::move(stored_key);

  CompiledModule mod;
  std::uint32_t n_kernels = r.U32();
  mod.kernels.reserve(n_kernels);
  for (std::uint32_t i = 0; i < n_kernels; ++i) mod.kernels.push_back(GetKernel(r));
  std::uint32_t n_constants = r.U32();
  mod.constants.reserve(n_constants);
  for (std::uint32_t i = 0; i < n_constants; ++i) {
    ConstantInfo c;
    c.name = r.Str();
    c.elem = DecodeEnum(r.U8(), vgpu::Type::kF64, "constant elem type");
    c.count = r.I64();
    c.offset = r.U32();
    c.bytes = r.U32();
    mod.constants.push_back(std::move(c));
  }
  std::uint32_t n_textures = r.U32();
  mod.textures.reserve(n_textures);
  for (std::uint32_t i = 0; i < n_textures; ++i) mod.textures.push_back(r.Str());
  mod.const_bytes = r.U32();
  mod.compile_millis = r.F64();
  if (!r.AtEnd()) {
    throw SerializeError(std::to_string(r.remaining()) + " trailing bytes after module");
  }
  return mod;
}

std::vector<std::uint8_t> SerializeNative(std::span<const std::uint8_t> so_bytes,
                                          const std::string& key_text) {
  static constexpr char kNsoMagic[8] = {'K', 'S', 'P', 'C', 'N', 'S', 'O', '1'};
  ByteWriter payload;
  payload.Str(key_text);
  payload.U64(so_bytes.size());
  payload.Raw(so_bytes.data(), so_bytes.size());

  ByteWriter out;
  out.Raw(kNsoMagic, sizeof(kNsoMagic));
  out.U32(kNativeFormatVersion);
  out.U64(Fnv1aBytes(payload.bytes().data(), payload.size()));
  out.U64(payload.size());
  out.Raw(payload.bytes().data(), payload.size());
  return out.Take();
}

std::vector<std::uint8_t> DeserializeNative(std::span<const std::uint8_t> bytes,
                                            std::string* key_text) {
  static constexpr char kNsoMagic[8] = {'K', 'S', 'P', 'C', 'N', 'S', 'O', '1'};
  ByteReader header(bytes);
  char magic[8];
  if (header.remaining() < sizeof(magic)) throw SerializeError("artifact shorter than header");
  for (char& c : magic) c = static_cast<char>(header.U8());
  if (std::memcmp(magic, kNsoMagic, sizeof(kNsoMagic)) != 0) {
    throw SerializeError("bad magic: not a kspec native artifact");
  }
  std::uint32_t version = header.U32();
  if (version != kNativeFormatVersion) {
    throw SerializeError("native format version " + std::to_string(version) + " != expected " +
                         std::to_string(kNativeFormatVersion));
  }
  std::uint64_t checksum = header.U64();
  std::uint64_t payload_size = header.U64();
  if (payload_size != header.remaining()) {
    throw SerializeError("payload size mismatch: header says " + std::to_string(payload_size) +
                         ", file has " + std::to_string(header.remaining()));
  }
  std::span<const std::uint8_t> payload = header.Rest();
  if (Fnv1aBytes(payload.data(), payload.size()) != checksum) {
    throw SerializeError("content checksum mismatch (corrupt artifact)");
  }

  ByteReader r(payload);
  std::string stored_key = r.Str();
  if (key_text) *key_text = std::move(stored_key);
  std::uint64_t so_size = r.U64();
  if (so_size != r.remaining()) {
    throw SerializeError("shared object size mismatch: payload says " + std::to_string(so_size) +
                         ", artifact has " + std::to_string(r.remaining()));
  }
  std::span<const std::uint8_t> so = r.Rest();
  return std::vector<std::uint8_t>(so.begin(), so.end());
}

std::size_t ApproxModuleBytes(const CompiledModule& mod) {
  std::size_t total = sizeof(CompiledModule);
  for (const auto& k : mod.kernels) {
    total += sizeof(vgpu::CompiledKernel);
    total += k.name.size() + k.listing.size();
    total += k.code.size() * sizeof(vgpu::Instr);
    total += k.ilp_at_pc.size() * sizeof(float);
    for (const auto& p : k.params) total += sizeof(vgpu::KernelParam) + p.name.size();
  }
  for (const auto& c : mod.constants) total += sizeof(ConstantInfo) + c.name.size();
  for (const auto& t : mod.textures) total += sizeof(std::string) + t.size();
  return total;
}

}  // namespace kspec::kcc
