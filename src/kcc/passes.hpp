// MiniPTX optimization passes.
//
// These run after lowering and implement the back half of the optimizations
// the dissertation identifies as requiring fixed compile-time values
// (Section 2.4): constant folding and propagation, strength reduction of
// divisions/moduli/multiplies by powers of two, local common-subexpression
// elimination, dead-code elimination, constant-branch folding with
// unreachable-code removal, and final compaction. On a specialized kernel
// these passes collapse parameter-dependent arithmetic into immediates; on a
// run-time-evaluated kernel they mostly have nothing to do — which is exactly
// the performance gap the paper measures.
#pragma once

#include <vector>

#include "vgpu/isa.hpp"

namespace kspec::kcc {

struct PassStats {
  int folded_consts = 0;
  int strength_reduced = 0;
  int dce_removed = 0;
  int cse_hits = 0;
};

struct PassOptions {
  bool strength_reduction = true;
  bool cse = true;
};

// Optimizes `code` in place. `vreg_types` gives each virtual register's type.
PassStats Optimize(std::vector<vgpu::Instr>& code,
                   const std::vector<vgpu::Type>& vreg_types,
                   const PassOptions& options = {});

// Evaluates a pure ALU instruction whose operands are the raw 64-bit values
// a/b/c. Returns false for non-evaluable opcodes. Shared with tests.
bool EvalConstInstr(const vgpu::Instr& instr, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c, std::uint64_t* out);

}  // namespace kspec::kcc
