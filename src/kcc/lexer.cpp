#include "kcc/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::kcc {

const char* TokName(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kFloatLit: return "float literal";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kLBrace: return "{";
    case Tok::kRBrace: return "}";
    case Tok::kLBracket: return "[";
    case Tok::kRBracket: return "]";
    case Tok::kComma: return ",";
    case Tok::kSemi: return ";";
    case Tok::kColon: return ":";
    case Tok::kQuestion: return "?";
    case Tok::kDot: return ".";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    case Tok::kPercent: return "%";
    case Tok::kAmp: return "&";
    case Tok::kPipe: return "|";
    case Tok::kCaret: return "^";
    case Tok::kTilde: return "~";
    case Tok::kBang: return "!";
    case Tok::kLess: return "<";
    case Tok::kGreater: return ">";
    case Tok::kLessEq: return "<=";
    case Tok::kGreaterEq: return ">=";
    case Tok::kEqEq: return "==";
    case Tok::kBangEq: return "!=";
    case Tok::kAmpAmp: return "&&";
    case Tok::kPipePipe: return "||";
    case Tok::kShl: return "<<";
    case Tok::kShr: return ">>";
    case Tok::kAssign: return "=";
    case Tok::kPlusEq: return "+=";
    case Tok::kMinusEq: return "-=";
    case Tok::kStarEq: return "*=";
    case Tok::kSlashEq: return "/=";
    case Tok::kPercentEq: return "%=";
    case Tok::kAmpEq: return "&=";
    case Tok::kPipeEq: return "|=";
    case Tok::kCaretEq: return "^=";
    case Tok::kShlEq: return "<<=";
    case Tok::kShrEq: return ">>=";
    case Tok::kPlusPlus: return "++";
    case Tok::kMinusMinus: return "--";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      Token t = Next();
      bool eof = t.kind == Tok::kEof;
      out.push_back(std::move(t));
      if (eof) return out;
    }
  }

 private:
  [[noreturn]] void Fail(const std::string& msg) {
    throw CompileError(Format("%d:%d: %s", line_, Col(), msg.c_str()));
  }

  int Col() const { return static_cast<int>(pos_ - line_start_) + 1; }
  char Peek(std::size_t k = 0) const {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return c;
  }
  bool Match(char c) {
    if (Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < src_.size()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (pos_ < src_.size() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (pos_ < src_.size() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (pos_ >= src_.size()) Fail("unterminated block comment");
        Advance();
        Advance();
      } else {
        return;
      }
    }
  }

  Token Make(Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line_;
    t.col = Col();
    return t;
  }

  Token Next() {
    if (pos_ >= src_.size()) return Make(Tok::kEof);
    int tok_line = line_;
    int tok_col = Col();
    char c = Peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_')) {
        Advance();
      }
      Token t = Make(Tok::kIdent);
      t.text = std::string(src_.substr(start, pos_ - start));
      t.line = tok_line;
      t.col = tok_col;
      return t;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      return Number(tok_line, tok_col);
    }

    Advance();
    Token t;
    t.line = tok_line;
    t.col = tok_col;
    switch (c) {
      case '(': t.kind = Tok::kLParen; return t;
      case ')': t.kind = Tok::kRParen; return t;
      case '{': t.kind = Tok::kLBrace; return t;
      case '}': t.kind = Tok::kRBrace; return t;
      case '[': t.kind = Tok::kLBracket; return t;
      case ']': t.kind = Tok::kRBracket; return t;
      case ',': t.kind = Tok::kComma; return t;
      case ';': t.kind = Tok::kSemi; return t;
      case ':': t.kind = Tok::kColon; return t;
      case '?': t.kind = Tok::kQuestion; return t;
      case '.': t.kind = Tok::kDot; return t;
      case '~': t.kind = Tok::kTilde; return t;
      case '+':
        t.kind = Match('+') ? Tok::kPlusPlus : Match('=') ? Tok::kPlusEq : Tok::kPlus;
        return t;
      case '-':
        t.kind = Match('-') ? Tok::kMinusMinus : Match('=') ? Tok::kMinusEq : Tok::kMinus;
        return t;
      case '*': t.kind = Match('=') ? Tok::kStarEq : Tok::kStar; return t;
      case '/': t.kind = Match('=') ? Tok::kSlashEq : Tok::kSlash; return t;
      case '%': t.kind = Match('=') ? Tok::kPercentEq : Tok::kPercent; return t;
      case '^': t.kind = Match('=') ? Tok::kCaretEq : Tok::kCaret; return t;
      case '&':
        t.kind = Match('&') ? Tok::kAmpAmp : Match('=') ? Tok::kAmpEq : Tok::kAmp;
        return t;
      case '|':
        t.kind = Match('|') ? Tok::kPipePipe : Match('=') ? Tok::kPipeEq : Tok::kPipe;
        return t;
      case '!': t.kind = Match('=') ? Tok::kBangEq : Tok::kBang; return t;
      case '=': t.kind = Match('=') ? Tok::kEqEq : Tok::kAssign; return t;
      case '<':
        if (Match('<')) {
          t.kind = Match('=') ? Tok::kShlEq : Tok::kShl;
        } else {
          t.kind = Match('=') ? Tok::kLessEq : Tok::kLess;
        }
        return t;
      case '>':
        if (Match('>')) {
          t.kind = Match('=') ? Tok::kShrEq : Tok::kShr;
        } else {
          t.kind = Match('=') ? Tok::kGreaterEq : Tok::kGreater;
        }
        return t;
      default:
        Fail(Format("unexpected character '%c'", c));
    }
  }

  Token Number(int tok_line, int tok_col) {
    std::size_t start = pos_;
    bool is_hex = false;
    if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
      is_hex = true;
      Advance();
      Advance();
      while (std::isxdigit(static_cast<unsigned char>(Peek()))) Advance();
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
    bool is_float = false;
    if (!is_hex && Peek() == '.') {
      is_float = true;
      Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
    if (!is_hex && (Peek() == 'e' || Peek() == 'E')) {
      char sign = Peek(1);
      if (std::isdigit(static_cast<unsigned char>(sign)) ||
          ((sign == '+' || sign == '-') && std::isdigit(static_cast<unsigned char>(Peek(2))))) {
        is_float = true;
        Advance();
        if (Peek() == '+' || Peek() == '-') Advance();
        while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
      }
    }
    std::string digits(src_.substr(start, pos_ - start));

    Token t;
    t.line = tok_line;
    t.col = tok_col;
    if (is_float) {
      t.kind = Tok::kFloatLit;
      t.float_value = std::strtod(digits.c_str(), nullptr);
      if (Peek() == 'f' || Peek() == 'F') {
        Advance();
        t.is_f32 = true;
      }
      return t;
    }
    t.kind = Tok::kIntLit;
    t.int_value = std::strtoull(digits.c_str(), nullptr, 0);
    // Suffixes: any combination of u/U and l/L (ll/LL).
    while (true) {
      char s = Peek();
      if (s == 'u' || s == 'U') {
        t.is_unsigned = true;
        Advance();
      } else if (s == 'l' || s == 'L') {
        t.is_wide = true;
        Advance();
        if (Peek() == 'l' || Peek() == 'L') Advance();
      } else if (s == 'f' || s == 'F') {
        // "1f" style literal: treat as float.
        Advance();
        t.kind = Tok::kFloatLit;
        t.float_value = static_cast<double>(t.int_value);
        t.is_f32 = true;
        return t;
      } else {
        break;
      }
    }
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_start_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<Token> Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace kspec::kcc
