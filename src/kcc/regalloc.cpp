#include "kcc/regalloc.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/status.hpp"

namespace kspec::kcc {

namespace {

using vgpu::Instr;
using vgpu::Opcode;
using vgpu::Type;

struct Block {
  int begin = 0;
  int end = 0;  // exclusive
  std::vector<int> succs;
  std::set<int> use, def;
  std::set<int> live_in, live_out;
};

std::vector<Block> BuildBlocks(const std::vector<Instr>& code) {
  std::set<int> leaders{0};
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& i = code[pc];
    if (i.op == Opcode::kBra || i.op == Opcode::kBraPred || i.op == Opcode::kExit) {
      leaders.insert(static_cast<int>(pc) + 1);
    }
    if (i.op == Opcode::kBra || i.op == Opcode::kBraPred) {
      leaders.insert(i.target);
      if (i.reconv >= 0) leaders.insert(i.reconv);
    }
  }
  leaders.insert(static_cast<int>(code.size()));

  std::vector<Block> blocks;
  std::map<int, int> block_of_pc;
  int prev = -1;
  for (int l : leaders) {
    if (l < 0 || l > static_cast<int>(code.size())) continue;
    if (prev >= 0 && l > prev) {
      Block b;
      b.begin = prev;
      b.end = l;
      block_of_pc[prev] = static_cast<int>(blocks.size());
      blocks.push_back(b);
    }
    prev = l;
  }
  // Successors.
  for (auto& b : blocks) {
    if (b.begin >= b.end) continue;
    const Instr& last = code[b.end - 1];
    auto add = [&](int pc) {
      auto it = block_of_pc.find(pc);
      if (it != block_of_pc.end()) b.succs.push_back(it->second);
    };
    switch (last.op) {
      case Opcode::kExit:
        break;
      case Opcode::kBra:
        add(last.target);
        break;
      case Opcode::kBraPred:
        add(last.target);
        add(b.end);
        break;
      default:
        add(b.end);
        break;
    }
  }
  return blocks;
}

void CollectUseDef(const std::vector<Instr>& code, Block& b) {
  for (int pc = b.begin; pc < b.end; ++pc) {
    const Instr& i = code[pc];
    auto use = [&](const vgpu::Operand& o) {
      if (o.is_reg() && !b.def.count(o.reg)) b.use.insert(o.reg);
    };
    if (i.op != Opcode::kSreg) {
      use(i.a);
      use(i.b);
      use(i.c);
    }
    if (i.dst >= 0) b.def.insert(i.dst);
  }
}

}  // namespace

AllocResult AllocateRegisters(const std::vector<Instr>& code,
                              const std::vector<Type>& vreg_types) {
  AllocResult out;
  out.ilp_at_pc.assign(code.size(), 1.0f);
  if (code.empty()) return out;

  std::vector<Block> blocks = BuildBlocks(code);
  for (auto& b : blocks) CollectUseDef(code, b);

  // Iterative backward liveness.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
      Block& b = *it;
      std::set<int> new_out;
      for (int s : b.succs) {
        new_out.insert(blocks[s].live_in.begin(), blocks[s].live_in.end());
      }
      std::set<int> new_in = b.use;
      for (int r : new_out) {
        if (!b.def.count(r)) new_in.insert(r);
      }
      if (new_out != b.live_out || new_in != b.live_in) {
        b.live_out = std::move(new_out);
        b.live_in = std::move(new_in);
        changed = true;
      }
    }
  }

  // Peak pressure: walk each block backwards from live_out.
  auto width = [&](int reg) -> int {
    Type t = vreg_types[static_cast<std::size_t>(reg)];
    if (t == Type::kPred) return 0;
    return vgpu::TypeSize(t) > 4 ? 2 : 1;
  };
  auto pred_width = [&](int reg) -> int {
    return vreg_types[static_cast<std::size_t>(reg)] == Type::kPred ? 1 : 0;
  };

  int peak = 0, peak_pred = 0;
  for (const auto& b : blocks) {
    std::set<int> live = b.live_out;
    auto measure = [&]() {
      int w = 0, p = 0;
      for (int r : live) {
        w += width(r);
        p += pred_width(r);
      }
      peak = std::max(peak, w);
      peak_pred = std::max(peak_pred, p);
    };
    measure();
    for (int pc = b.end - 1; pc >= b.begin; --pc) {
      const Instr& i = code[pc];
      if (i.dst >= 0) live.erase(i.dst);
      if (i.op != Opcode::kSreg) {
        if (i.a.is_reg()) live.insert(i.a.reg);
        if (i.b.is_reg()) live.insert(i.b.reg);
        if (i.c.is_reg()) live.insert(i.c.reg);
      }
      measure();
    }
  }
  // Real kernels always need a couple of registers for addresses/indices.
  out.reg_count = std::max(peak, 2);
  out.pred_count = peak_pred;

  // Static ILP per block: instructions / critical path. Dependencies are
  // def->use within the block; loads depend on their address, stores on both
  // operands. Memory is not serialized for the estimate (GPUs overlap
  // independent accesses aggressively).
  for (const auto& b : blocks) {
    int n = b.end - b.begin;
    if (n <= 0) continue;
    std::map<int, int> depth_of_def;  // vreg -> chain depth at its last def
    int cp = 1;
    for (int pc = b.begin; pc < b.end; ++pc) {
      const Instr& i = code[pc];
      int d = 0;
      auto dep = [&](const vgpu::Operand& o) {
        if (!o.is_reg()) return;
        auto it = depth_of_def.find(o.reg);
        if (it != depth_of_def.end()) d = std::max(d, it->second);
      };
      if (i.op != Opcode::kSreg) {
        dep(i.a);
        dep(i.b);
        dep(i.c);
      }
      int my_depth = d + 1;
      if (i.dst >= 0) depth_of_def[i.dst] = my_depth;
      cp = std::max(cp, my_depth);
    }
    float ilp = static_cast<float>(n) / static_cast<float>(cp);
    for (int pc = b.begin; pc < b.end; ++pc) out.ilp_at_pc[pc] = ilp;
  }
  return out;
}

}  // namespace kspec::kcc
