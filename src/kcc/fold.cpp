// AST-level constant folding.
//
// After preprocessing, specialization constants are literal tokens, so
// expressions like `ARG_A * ARG_B` arrive here as `3 * 7` and fold to `21`.
// This is the front-end half of the paper's "constant folding and
// propagation" benefit; the IR passes finish the job for values that mix
// constants with run-time registers.
#include <cmath>
#include <optional>

#include "kcc/sema.hpp"
#include "support/status.hpp"

namespace kspec::kcc {

namespace {

bool IsLiteral(const Expr& e) {
  return e.kind == ExprKind::kIntLit || e.kind == ExprKind::kFloatLit;
}

double AsDouble(const Expr& e) {
  if (e.kind == ExprKind::kFloatLit) return e.float_value;
  if (IsSignedScalar(e.type.scalar)) return static_cast<double>(static_cast<std::int64_t>(e.int_value));
  return static_cast<double>(e.int_value);
}

// Normalizes a 64-bit raw integer to the width/signedness of `s`.
std::uint64_t NormInt(std::uint64_t v, Scalar s) {
  switch (s) {
    case Scalar::kBool: return v ? 1 : 0;
    case Scalar::kInt: return static_cast<std::uint64_t>(static_cast<std::int64_t>(
        static_cast<std::int32_t>(static_cast<std::uint32_t>(v))));
    case Scalar::kUint: return static_cast<std::uint32_t>(v);
    default: return v;
  }
}

std::int64_t SignedVal(const Expr& e) {
  return static_cast<std::int64_t>(e.int_value);
}

ExprPtr IntResult(std::uint64_t raw, Scalar s, int line) {
  auto e = MakeIntLit(0, s, line);
  e->int_value = NormInt(raw, s);
  return e;
}

ExprPtr FoldBinary(const Expr& e) {
  const Expr& a = *e.a;
  const Expr& b = *e.b;
  if (!IsLiteral(a) || !IsLiteral(b)) return nullptr;
  Scalar rs = e.type.scalar;

  // Comparisons and logicals produce bool.
  auto make_bool = [&](bool v) { return IntResult(v, Scalar::kBool, e.line); };

  if (e.bin_op == BinOp::kLogAnd) return make_bool(AsDouble(a) != 0 && AsDouble(b) != 0);
  if (e.bin_op == BinOp::kLogOr) return make_bool(AsDouble(a) != 0 || AsDouble(b) != 0);

  const Scalar os = a.type.scalar;  // operand common type (set by sema)
  if (IsFloatScalar(os)) {
    double x = AsDouble(a), y = AsDouble(b);
    switch (e.bin_op) {
      case BinOp::kAdd: case BinOp::kSub: case BinOp::kMul: case BinOp::kDiv: case BinOp::kRem: {
        double r;
        switch (e.bin_op) {
          case BinOp::kAdd: r = x + y; break;
          case BinOp::kSub: r = x - y; break;
          case BinOp::kMul: r = x * y; break;
          case BinOp::kDiv: r = x / y; break;
          default: r = std::fmod(x, y); break;
        }
        if (os == Scalar::kFloat) r = static_cast<float>(r);
        return MakeFloatLit(r, rs, e.line);
      }
      case BinOp::kLt: return make_bool(x < y);
      case BinOp::kLe: return make_bool(x <= y);
      case BinOp::kGt: return make_bool(x > y);
      case BinOp::kGe: return make_bool(x >= y);
      case BinOp::kEq: return make_bool(x == y);
      case BinOp::kNe: return make_bool(x != y);
      default: return nullptr;
    }
  }

  const bool sgn = IsSignedScalar(os);
  std::uint64_t ua = a.int_value, ub = b.int_value;
  std::int64_t sa = SignedVal(a), sb = SignedVal(b);
  const bool wide = os == Scalar::kLong || os == Scalar::kUlong;
  const unsigned width = wide ? 64 : 32;
  switch (e.bin_op) {
    case BinOp::kAdd: return IntResult(ua + ub, rs, e.line);
    case BinOp::kSub: return IntResult(ua - ub, rs, e.line);
    case BinOp::kMul: return IntResult(ua * ub, rs, e.line);
    case BinOp::kDiv:
      if (ub == 0) return nullptr;  // leave the runtime to decide
      return IntResult(sgn ? static_cast<std::uint64_t>(sa / sb) : ua / ub, rs, e.line);
    case BinOp::kRem:
      if (ub == 0) return nullptr;
      return IntResult(sgn ? static_cast<std::uint64_t>(sa % sb) : ua % ub, rs, e.line);
    case BinOp::kAnd: return IntResult(ua & ub, rs, e.line);
    case BinOp::kOr: return IntResult(ua | ub, rs, e.line);
    case BinOp::kXor: return IntResult(ua ^ ub, rs, e.line);
    case BinOp::kShl:
      if (ub >= width) return IntResult(0, rs, e.line);
      return IntResult(ua << ub, rs, e.line);
    case BinOp::kShr:
      if (ub >= width) return IntResult(sgn && sa < 0 ? ~0ull : 0, rs, e.line);
      if (sgn) return IntResult(static_cast<std::uint64_t>(sa >> ub), rs, e.line);
      if (!wide) ua = static_cast<std::uint32_t>(ua);
      return IntResult(ua >> ub, rs, e.line);
    case BinOp::kLt: return make_bool(sgn ? sa < sb : ua < ub);
    case BinOp::kLe: return make_bool(sgn ? sa <= sb : ua <= ub);
    case BinOp::kGt: return make_bool(sgn ? sa > sb : ua > ub);
    case BinOp::kGe: return make_bool(sgn ? sa >= sb : ua >= ub);
    case BinOp::kEq: return make_bool(ua == ub);
    case BinOp::kNe: return make_bool(ua != ub);
    default: return nullptr;
  }
}

ExprPtr FoldUnary(const Expr& e) {
  const Expr& a = *e.a;
  if (!IsLiteral(a)) return nullptr;
  Scalar rs = e.type.scalar;
  switch (e.un_op) {
    case UnOp::kPlus:
      return a.Clone();
    case UnOp::kNeg:
      if (IsFloatScalar(a.type.scalar)) return MakeFloatLit(-AsDouble(a), rs, e.line);
      return IntResult(~a.int_value + 1, rs, e.line);
    case UnOp::kNot:
      return IntResult(AsDouble(a) == 0 ? 1 : 0, Scalar::kBool, e.line);
    case UnOp::kBitNot:
      return IntResult(~a.int_value, rs, e.line);
  }
  return nullptr;
}

ExprPtr FoldCast(const Expr& e) {
  const Expr& a = *e.a;
  if (!IsLiteral(a) || e.type.is_pointer) return nullptr;
  Scalar rs = e.type.scalar;
  if (IsFloatScalar(rs)) {
    double v = AsDouble(a);
    if (rs == Scalar::kFloat) v = static_cast<float>(v);
    return MakeFloatLit(v, rs, e.line);
  }
  if (a.kind == ExprKind::kFloatLit) {
    return IntResult(static_cast<std::uint64_t>(static_cast<std::int64_t>(a.float_value)), rs,
                     e.line);
  }
  return IntResult(a.int_value, rs, e.line);
}

ExprPtr FoldCall(const Expr& e) {
  for (const auto& arg : e.args) {
    if (!IsLiteral(*arg)) return nullptr;
  }
  Scalar rs = e.type.scalar;
  auto farg = [&](std::size_t i) { return AsDouble(*e.args[i]); };
  if (e.name == "min" || e.name == "umin" || e.name == "fminf") {
    double r = std::min(farg(0), farg(1));
    return IsFloatScalar(rs) ? MakeFloatLit(static_cast<float>(r), rs, e.line)
                             : IntResult(static_cast<std::uint64_t>(static_cast<std::int64_t>(r)), rs, e.line);
  }
  if (e.name == "max" || e.name == "umax" || e.name == "fmaxf") {
    double r = std::max(farg(0), farg(1));
    return IsFloatScalar(rs) ? MakeFloatLit(static_cast<float>(r), rs, e.line)
                             : IntResult(static_cast<std::uint64_t>(static_cast<std::int64_t>(r)), rs, e.line);
  }
  if (e.name == "abs") {
    std::int64_t v = SignedVal(*e.args[0]);
    return IntResult(static_cast<std::uint64_t>(v < 0 ? -v : v), rs, e.line);
  }
  if (e.name == "fabsf") return MakeFloatLit(std::fabs(farg(0)), rs, e.line);
  if (e.name == "sqrtf" || e.name == "sqrt") return MakeFloatLit(std::sqrt(farg(0)), rs, e.line);
  if (e.name == "__mul24" || e.name == "__umul24") {
    std::uint64_t x = e.args[0]->int_value & 0xffffffu;
    std::uint64_t y = e.args[1]->int_value & 0xffffffu;
    return IntResult(x * y, rs, e.line);
  }
  return nullptr;
}

}  // namespace

ExprPtr TryFold(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kBinary: return FoldBinary(e);
    case ExprKind::kUnary: return FoldUnary(e);
    case ExprKind::kCast: return FoldCast(e);
    case ExprKind::kCall: return FoldCall(e);
    case ExprKind::kTernary:
      if (IsLiteral(*e.a)) {
        return AsDouble(*e.a) != 0 ? e.b->Clone() : e.c->Clone();
      }
      return nullptr;
    default:
      return nullptr;
  }
}

void FoldInPlace(ExprPtr& e) {
  if (!e) return;
  FoldInPlace(e->a);
  FoldInPlace(e->b);
  FoldInPlace(e->c);
  for (auto& arg : e->args) FoldInPlace(arg);
  if (ExprPtr folded = TryFold(*e)) e = std::move(folded);
}

void FoldStmt(StmtPtr& s) {
  if (!s) return;
  switch (s->kind) {
    case StmtKind::kDecl:
      for (auto& d : s->decls) FoldInPlace(d.init);
      return;
    case StmtKind::kArrayDecl:
      FoldInPlace(s->array_size);
      return;
    case StmtKind::kExpr:
      FoldInPlace(s->expr);
      return;
    case StmtKind::kIf:
      FoldInPlace(s->cond);
      FoldStmt(s->then_branch);
      FoldStmt(s->else_branch);
      return;
    case StmtKind::kWhile:
      FoldInPlace(s->cond);
      FoldStmt(s->body);
      return;
    case StmtKind::kFor:
      FoldStmt(s->init);
      FoldInPlace(s->cond);
      FoldInPlace(s->step);
      FoldStmt(s->body);
      return;
    case StmtKind::kBlock:
      for (auto& st : s->stmts) FoldStmt(st);
      return;
    case StmtKind::kReturn:
    case StmtKind::kSync:
      return;
  }
}

std::optional<std::int64_t> EvalConstInt(const Expr& e) {
  if (e.kind == ExprKind::kIntLit) return static_cast<std::int64_t>(e.int_value);
  ExprPtr folded = TryFold(e);
  if (folded && folded->kind == ExprKind::kIntLit) {
    return static_cast<std::int64_t>(folded->int_value);
  }
  return std::nullopt;
}

}  // namespace kspec::kcc
