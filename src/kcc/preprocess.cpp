#include "kcc/preprocess.hpp"

#include <cctype>
#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "kcc/lexer.hpp"
#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::kcc {

std::string StripComments(const std::string& source) {
  std::string out;
  out.reserve(source.size());
  std::size_t i = 0;
  while (i < source.size()) {
    char c = source[i];
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') ++i;
    } else if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < source.size() && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') out += '\n';
        ++i;
      }
      if (i + 1 >= source.size()) throw CompileError("unterminated block comment");
      i += 2;
      out += ' ';
    } else {
      out += c;
      ++i;
    }
  }
  return out;
}

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

class Preprocessor {
 public:
  explicit Preprocessor(const std::map<std::string, std::string>& defines)
      : macros_(defines) {}

  std::string Run(const std::string& source) {
    std::vector<std::string> lines = SplitLogicalLines(StripComments(source));
    std::string out;
    for (std::size_t n = 0; n < lines.size(); ++n) {
      line_no_ = static_cast<int>(n) + 1;
      const std::string& line = lines[n];
      std::string_view trimmed = Trim(line);
      if (!trimmed.empty() && trimmed[0] == '#') {
        Directive(std::string(trimmed.substr(1)));
        out += '\n';  // keep line numbers stable
        continue;
      }
      if (Active()) {
        out += Expand(line, {});
      }
      out += '\n';
    }
    if (!cond_.empty()) throw CompileError("unterminated #if block");
    return out;
  }

 private:
  [[noreturn]] void Fail(const std::string& msg) {
    throw CompileError(Format("line %d: %s", line_no_, msg.c_str()));
  }

  // Merges lines ending in a backslash continuation.
  static std::vector<std::string> SplitLogicalLines(const std::string& src) {
    std::vector<std::string> raw = Split(src, '\n');
    std::vector<std::string> out;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      std::string line = raw[i];
      while (EndsWith(Trim(line), "\\") && i + 1 < raw.size()) {
        std::string_view t = Trim(line);
        line = std::string(t.substr(0, t.size() - 1));
        line += raw[++i];
      }
      out.push_back(line);
    }
    return out;
  }

  struct Cond {
    bool parent_active;
    bool taken;      // some branch of this #if chain has been taken
    bool this_active;
  };

  bool Active() const {
    return cond_.empty() || (cond_.back().this_active && cond_.back().parent_active);
  }

  void Directive(const std::string& body) {
    std::string_view rest = Trim(body);
    std::size_t sp = 0;
    while (sp < rest.size() && IsIdentChar(rest[sp])) ++sp;
    std::string name(rest.substr(0, sp));
    std::string args = std::string(Trim(rest.substr(sp)));

    if (name == "if" || name == "ifdef" || name == "ifndef") {
      bool parent = Active();
      bool value = false;
      if (parent) {
        if (name == "if") {
          value = EvalCondition(args);
        } else {
          bool defined = macros_.count(args) > 0;
          value = (name == "ifdef") ? defined : !defined;
        }
      }
      cond_.push_back({parent, value, value});
      return;
    }
    if (name == "elif") {
      if (cond_.empty()) Fail("#elif without #if");
      Cond& c = cond_.back();
      if (!c.parent_active) return;
      if (c.taken) {
        c.this_active = false;
      } else {
        c.this_active = EvalCondition(args);
        c.taken = c.this_active;
      }
      return;
    }
    if (name == "else") {
      if (cond_.empty()) Fail("#else without #if");
      Cond& c = cond_.back();
      c.this_active = c.parent_active && !c.taken;
      c.taken = true;
      return;
    }
    if (name == "endif") {
      if (cond_.empty()) Fail("#endif without #if");
      cond_.pop_back();
      return;
    }
    if (!Active()) return;

    if (name == "define") {
      std::size_t i = 0;
      while (i < args.size() && IsIdentChar(args[i])) ++i;
      std::string macro_name = args.substr(0, i);
      if (macro_name.empty() || !IsIdentStart(macro_name[0])) Fail("bad #define name");
      if (i < args.size() && args[i] == '(') {
        Fail("function-like macros are not supported; use C++-style constants or kernel parameters");
      }
      macros_[macro_name] = std::string(Trim(args.substr(i)));
      return;
    }
    if (name == "undef") {
      macros_.erase(std::string(Trim(args)));
      return;
    }
    if (name == "error") {
      Fail("#error " + args);
    }
    if (name == "pragma") {
      return;  // #pragma unroll etc. accepted and ignored (unrolling is automatic)
    }
    Fail("unknown preprocessor directive #" + name);
  }

  // Expands macros in `text`. `expanding` guards against self-recursion.
  std::string Expand(const std::string& text, std::set<std::string> expanding,
                     int depth = 0) {
    if (depth > 32) Fail("macro expansion too deep");
    std::string out;
    out.reserve(text.size());
    std::size_t i = 0;
    while (i < text.size()) {
      char c = text[i];
      if (IsIdentStart(c)) {
        std::size_t start = i;
        while (i < text.size() && IsIdentChar(text[i])) ++i;
        std::string ident = text.substr(start, i - start);
        auto it = macros_.find(ident);
        if (it != macros_.end() && !expanding.count(ident)) {
          std::set<std::string> nested = expanding;
          nested.insert(ident);
          out += ' ';
          out += Expand(it->second, nested, depth + 1);
          out += ' ';
        } else {
          out += ident;
        }
      } else {
        out += c;
        ++i;
      }
    }
    return out;
  }

  // Evaluates a #if condition: handles defined(X)/defined X, then macro
  // expansion, then a constant integer expression where any remaining
  // identifier evaluates to 0 (standard C semantics).
  bool EvalCondition(const std::string& expr_in) {
    std::string expr;
    std::size_t i = 0;
    while (i < expr_in.size()) {
      if (IsIdentStart(expr_in[i])) {
        std::size_t start = i;
        while (i < expr_in.size() && IsIdentChar(expr_in[i])) ++i;
        std::string ident = expr_in.substr(start, i - start);
        if (ident == "defined") {
          while (i < expr_in.size() && std::isspace(static_cast<unsigned char>(expr_in[i]))) ++i;
          bool paren = i < expr_in.size() && expr_in[i] == '(';
          if (paren) ++i;
          while (i < expr_in.size() && std::isspace(static_cast<unsigned char>(expr_in[i]))) ++i;
          std::size_t ns = i;
          while (i < expr_in.size() && IsIdentChar(expr_in[i])) ++i;
          std::string name = expr_in.substr(ns, i - ns);
          if (name.empty()) Fail("defined() needs a name");
          if (paren) {
            while (i < expr_in.size() && std::isspace(static_cast<unsigned char>(expr_in[i]))) ++i;
            if (i >= expr_in.size() || expr_in[i] != ')') Fail("missing ) after defined(");
            ++i;
          }
          expr += macros_.count(name) ? " 1 " : " 0 ";
        } else {
          expr += ident;
        }
      } else {
        expr += expr_in[i++];
      }
    }
    expr = Expand(expr, {});
    // Any identifier left after expansion becomes 0.
    std::string final_expr;
    i = 0;
    while (i < expr.size()) {
      if (IsIdentStart(expr[i])) {
        std::size_t start = i;
        while (i < expr.size() && IsIdentChar(expr[i])) ++i;
        std::string ident = expr.substr(start, i - start);
        // Integer suffixes attached to numbers are handled by the lexer, not
        // here; pure identifiers become 0.
        if (std::isdigit(static_cast<unsigned char>(ident[0]))) {
          final_expr += ident;
        } else {
          final_expr += " 0 ";
        }
      } else {
        final_expr += expr[i++];
      }
    }
    return EvalIntExpr(final_expr) != 0;
  }

  // Tiny recursive-descent evaluator over lexer tokens for #if expressions.
  std::int64_t EvalIntExpr(const std::string& text) {
    std::vector<Token> toks;
    try {
      toks = Lex(text);
    } catch (const CompileError& e) {
      Fail(std::string("bad #if expression: ") + e.what());
    }
    std::size_t pos = 0;
    auto peek = [&]() -> const Token& { return toks[pos]; };
    auto get = [&]() -> const Token& { return toks[pos++]; };

    // Precedence climbing.
    std::function<std::int64_t(int)> parse = [&](int min_prec) -> std::int64_t {
      std::int64_t lhs;
      const Token& t = get();
      switch (t.kind) {
        case Tok::kIntLit: lhs = static_cast<std::int64_t>(t.int_value); break;
        case Tok::kFloatLit: Fail("float in #if expression"); break;
        case Tok::kMinus: lhs = -parse(100); break;
        case Tok::kPlus: lhs = parse(100); break;
        case Tok::kBang: lhs = !parse(100); break;
        case Tok::kTilde: lhs = ~parse(100); break;
        case Tok::kLParen:
          lhs = parse(0);
          if (get().kind != Tok::kRParen) Fail("missing ) in #if expression");
          break;
        default:
          Fail("bad token in #if expression");
      }
      while (true) {
        int prec;
        Tok op = peek().kind;
        switch (op) {
          case Tok::kStar: case Tok::kSlash: case Tok::kPercent: prec = 10; break;
          case Tok::kPlus: case Tok::kMinus: prec = 9; break;
          case Tok::kShl: case Tok::kShr: prec = 8; break;
          case Tok::kLess: case Tok::kLessEq: case Tok::kGreater: case Tok::kGreaterEq:
            prec = 7; break;
          case Tok::kEqEq: case Tok::kBangEq: prec = 6; break;
          case Tok::kAmp: prec = 5; break;
          case Tok::kCaret: prec = 4; break;
          case Tok::kPipe: prec = 3; break;
          case Tok::kAmpAmp: prec = 2; break;
          case Tok::kPipePipe: prec = 1; break;
          default: return lhs;
        }
        if (prec < min_prec) return lhs;
        get();
        std::int64_t rhs = parse(prec + 1);
        switch (op) {
          case Tok::kStar: lhs *= rhs; break;
          case Tok::kSlash: lhs = rhs ? lhs / rhs : 0; break;
          case Tok::kPercent: lhs = rhs ? lhs % rhs : 0; break;
          case Tok::kPlus: lhs += rhs; break;
          case Tok::kMinus: lhs -= rhs; break;
          case Tok::kShl: lhs <<= rhs; break;
          case Tok::kShr: lhs >>= rhs; break;
          case Tok::kLess: lhs = lhs < rhs; break;
          case Tok::kLessEq: lhs = lhs <= rhs; break;
          case Tok::kGreater: lhs = lhs > rhs; break;
          case Tok::kGreaterEq: lhs = lhs >= rhs; break;
          case Tok::kEqEq: lhs = lhs == rhs; break;
          case Tok::kBangEq: lhs = lhs != rhs; break;
          case Tok::kAmp: lhs &= rhs; break;
          case Tok::kCaret: lhs ^= rhs; break;
          case Tok::kPipe: lhs |= rhs; break;
          case Tok::kAmpAmp: lhs = lhs && rhs; break;
          case Tok::kPipePipe: lhs = lhs || rhs; break;
          default: break;
        }
      }
    };
    std::int64_t v = parse(0);
    if (peek().kind != Tok::kEof) Fail("trailing tokens in #if expression");
    return v;
  }

  std::map<std::string, std::string> macros_;
  std::vector<Cond> cond_;
  int line_no_ = 0;
};

}  // namespace

std::string Preprocess(const std::string& source,
                       const std::map<std::string, std::string>& defines) {
  return Preprocessor(defines).Run(source);
}

std::string SpecializeSource(const std::string& source,
                             const std::map<std::string, std::string>& defines) {
  std::string out;
  out.reserve(source.size() + defines.size() * 24);
  out += "// --- specialized by kcc::SpecializeSource ---\n";
  for (const auto& [name, value] : defines) {
    out += "#define " + name + " " + value + "\n";
  }
  out += "// --- original source follows ---\n";
  out += source;
  return out;
}

}  // namespace kspec::kcc
