#include "kcc/sema.hpp"

#include <cmath>
#include <map>
#include <optional>
#include <vector>

#include "support/math.hpp"
#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::kcc {

namespace {

[[noreturn]] void Fail(int line, const std::string& msg) {
  throw CompileError(Format("line %d: %s", line, msg.c_str()));
}

// --------------------------------------------------------------------------
// Usual arithmetic conversions (simplified C rules over our scalar set).
// --------------------------------------------------------------------------

int Rank(Scalar s) {
  switch (s) {
    case Scalar::kBool: return 0;
    case Scalar::kInt: return 1;
    case Scalar::kUint: return 2;
    case Scalar::kLong: return 3;
    case Scalar::kUlong: return 4;
    case Scalar::kFloat: return 5;
    case Scalar::kDouble: return 6;
    case Scalar::kVoid: return -1;
  }
  return -1;
}

Scalar Promote(Scalar a, Scalar b) {
  if (a == b) return a;
  return Rank(a) >= Rank(b) ? a : b;
}

// --------------------------------------------------------------------------
// Intrinsics
// --------------------------------------------------------------------------

struct Intrinsic {
  Scalar result;
  std::vector<Scalar> args;
};

const std::map<std::string, Intrinsic>& Intrinsics() {
  using S = Scalar;
  static const std::map<std::string, Intrinsic> table = {
      {"min", {S::kInt, {S::kInt, S::kInt}}},
      {"max", {S::kInt, {S::kInt, S::kInt}}},
      {"abs", {S::kInt, {S::kInt}}},
      {"umin", {S::kUint, {S::kUint, S::kUint}}},
      {"umax", {S::kUint, {S::kUint, S::kUint}}},
      {"fminf", {S::kFloat, {S::kFloat, S::kFloat}}},
      {"fmaxf", {S::kFloat, {S::kFloat, S::kFloat}}},
      {"fabsf", {S::kFloat, {S::kFloat}}},
      {"sqrtf", {S::kFloat, {S::kFloat}}},
      {"rsqrtf", {S::kFloat, {S::kFloat}}},
      {"__fsqrt_rn", {S::kFloat, {S::kFloat}}},
      {"floorf", {S::kFloat, {S::kFloat}}},
      {"ceilf", {S::kFloat, {S::kFloat}}},
      {"expf", {S::kFloat, {S::kFloat}}},
      {"__expf", {S::kFloat, {S::kFloat}}},
      {"logf", {S::kFloat, {S::kFloat}}},
      {"__logf", {S::kFloat, {S::kFloat}}},
      {"sinf", {S::kFloat, {S::kFloat}}},
      {"__sinf", {S::kFloat, {S::kFloat}}},
      {"cosf", {S::kFloat, {S::kFloat}}},
      {"__cosf", {S::kFloat, {S::kFloat}}},
      {"fmaf", {S::kFloat, {S::kFloat, S::kFloat, S::kFloat}}},
      {"sqrt", {S::kDouble, {S::kDouble}}},
      {"fabs", {S::kDouble, {S::kDouble}}},
      {"floor", {S::kDouble, {S::kDouble}}},
      {"ceil", {S::kDouble, {S::kDouble}}},
      {"fma", {S::kDouble, {S::kDouble, S::kDouble, S::kDouble}}},
      {"__mul24", {S::kInt, {S::kInt, S::kInt}}},
      {"__umul24", {S::kUint, {S::kUint, S::kUint}}},
  };
  return table;
}

// Atomic intrinsics take a pointer first argument; handled separately.
bool IsAtomicName(const std::string& n) {
  return n == "atomicAdd" || n == "atomicMin" || n == "atomicMax" || n == "atomicExch" ||
         n == "atomicCAS";
}

// --------------------------------------------------------------------------
// Symbols
// --------------------------------------------------------------------------

struct Symbol {
  enum class Kind { kScalar, kPointer, kSharedArray, kLocalArray, kConstArray, kTexture };
  Kind kind = Kind::kScalar;
  TypeRef type;  // scalar type (for arrays: element type as non-pointer)
  bool is_const = false;
};

class KernelSema {
 public:
  KernelSema(ModuleAst& module, KernelDecl& kernel) : module_(module), kernel_(kernel) {}

  void Run() {
    PushScope();
    for (auto& c : module_.constants) {
      Symbol sym;
      sym.kind = Symbol::Kind::kConstArray;
      sym.type = TypeRef::Value(c.elem);
      sym.is_const = true;
      Declare(c.name, sym, c.line);
    }
    for (auto& t : module_.textures) {
      Symbol sym;
      sym.kind = Symbol::Kind::kTexture;
      sym.type = TypeRef::Value(Scalar::kFloat);
      sym.is_const = true;
      Declare(t.name, sym, t.line);
    }
    PushScope();
    for (auto& p : kernel_.params) {
      Symbol sym;
      sym.kind = p.type.is_pointer ? Symbol::Kind::kPointer : Symbol::Kind::kScalar;
      sym.type = p.type;
      Declare(p.name, sym, kernel_.line);
    }
    CheckStmt(*kernel_.body, /*top_level=*/true, /*in_loop=*/false);
    PopScope();
    PopScope();
  }

 private:
  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  void Declare(const std::string& name, Symbol sym, int line) {
    for (const auto& scope : scopes_) {
      if (scope.count(name)) {
        Fail(line, Format("redeclaration or shadowing of '%s' (Kernel-C forbids shadowing)",
                          name.c_str()));
      }
    }
    scopes_.back()[name] = std::move(sym);
  }

  const Symbol* Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return &f->second;
    }
    return nullptr;
  }

  // Wraps `e` in a cast to `target` when types differ.
  void Coerce(ExprPtr& e, Scalar target) {
    if (e->type.is_pointer) Fail(e->line, "cannot convert a pointer to a scalar");
    if (e->type.scalar == target) return;
    auto cast = std::make_unique<Expr>();
    cast->kind = ExprKind::kCast;
    cast->line = e->line;
    cast->type = TypeRef::Value(target);
    cast->a = std::move(e);
    e = std::move(cast);
  }

  void CheckCondition(ExprPtr& e) {
    CheckExpr(e);
    if (e->type.is_pointer) Fail(e->line, "pointer used as a condition");
    if (e->type.scalar == Scalar::kVoid) Fail(e->line, "void used as a condition");
  }

  void CheckStmt(Stmt& s, bool top_level, bool in_loop) {
    switch (s.kind) {
      case StmtKind::kBlock: {
        PushScope();
        for (auto& st : s.stmts) CheckStmt(*st, top_level, in_loop);
        PopScope();
        return;
      }
      case StmtKind::kDecl: {
        for (auto& d : s.decls) {
          if (d.init) {
            CheckExpr(d.init);
            if (d.init->type.is_pointer != d.type.is_pointer) {
              Fail(s.line, "pointer/scalar mismatch in initialization of '" + d.name + "'");
            }
            if (d.type.is_pointer) {
              if (d.init->type.scalar != d.type.scalar) {
                Fail(s.line, "pointer element type mismatch in '" + d.name + "'");
              }
              d.type.space = d.init->type.space;  // adopt the source space
            } else {
              Coerce(d.init, d.type.scalar);
            }
          } else if (d.type.is_pointer) {
            Fail(s.line, "pointer variable '" + d.name + "' needs an initializer");
          }
          Symbol sym;
          sym.kind = d.type.is_pointer ? Symbol::Kind::kPointer : Symbol::Kind::kScalar;
          sym.type = d.type;
          sym.is_const = d.is_const;
          Declare(d.name, sym, s.line);
        }
        return;
      }
      case StmtKind::kArrayDecl: {
        if (s.array_space == vgpu::Space::kShared && !top_level) {
          Fail(s.line, "__shared__ arrays must be declared at kernel top level");
        }
        if (s.array_dynamic) {
          // extern __shared__: sized by the launch configuration; the kernel
          // only knows the base. (The simpler static syntax "behaving like
          // dynamic" is what specialization buys — Section 4.1.)
          Symbol dyn_sym;
          dyn_sym.kind = Symbol::Kind::kSharedArray;
          dyn_sym.type = s.array_elem;
          Declare(s.array_name, dyn_sym, s.line);
          return;
        }
        CheckExpr(s.array_size);
        FoldInPlace(s.array_size);
        auto n = EvalConstInt(*s.array_size);
        if (!n || *n <= 0) {
          Fail(s.line,
               Format("array '%s' needs a positive compile-time constant size; pass the size "
                      "as a specialization constant (-D) to fix it at compile time",
                      s.array_name.c_str()));
        }
        Symbol sym;
        sym.kind = s.array_space == vgpu::Space::kShared ? Symbol::Kind::kSharedArray
                                                         : Symbol::Kind::kLocalArray;
        sym.type = s.array_elem;
        Declare(s.array_name, sym, s.line);
        return;
      }
      case StmtKind::kExpr:
        CheckExpr(s.expr);
        return;
      case StmtKind::kIf:
        CheckCondition(s.cond);
        CheckStmt(*s.then_branch, false, in_loop);
        if (s.else_branch) CheckStmt(*s.else_branch, false, in_loop);
        return;
      case StmtKind::kWhile:
        CheckCondition(s.cond);
        CheckStmt(*s.body, false, true);
        return;
      case StmtKind::kFor: {
        PushScope();  // for-scope holds the induction variable
        if (s.init) CheckStmt(*s.init, false, in_loop);
        if (s.cond) CheckCondition(s.cond);
        if (s.step) CheckExpr(s.step);
        CheckStmt(*s.body, false, true);
        PopScope();
        return;
      }
      case StmtKind::kReturn:
      case StmtKind::kSync:
        return;
    }
  }

  void CheckLvalue(const Expr& e) {
    if (e.kind == ExprKind::kVarRef) {
      const Symbol* sym = Lookup(e.name);
      KSPEC_CHECK(sym != nullptr);
      if (sym->is_const) Fail(e.line, "assignment to const variable '" + e.name + "'");
      if (sym->kind == Symbol::Kind::kSharedArray || sym->kind == Symbol::Kind::kLocalArray ||
          sym->kind == Symbol::Kind::kConstArray) {
        Fail(e.line, "cannot assign to an array; index it");
      }
      return;
    }
    if (e.kind == ExprKind::kIndex) {
      if (e.a->kind == ExprKind::kVarRef) {
        const Symbol* sym = Lookup(e.a->name);
        if (sym && sym->kind == Symbol::Kind::kConstArray) {
          Fail(e.line, "constant memory is read-only on the device");
        }
      }
      return;
    }
    Fail(e.line, "expression is not assignable");
  }

  void CheckExpr(ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
        return;  // typed at parse
      case ExprKind::kSreg:
        e->type = TypeRef::Value(Scalar::kUint);
        return;
      case ExprKind::kVarRef: {
        const Symbol* sym = Lookup(e->name);
        if (!sym) {
          bool all_caps =
              e->name.find_first_of("abcdefghijklmnopqrstuvwxyz") == std::string::npos;
          Fail(e->line,
               Format("use of undeclared identifier '%s'%s", e->name.c_str(),
                      all_caps ? " (ALL-CAPS identifiers are usually specialization "
                                 "constants: define it with -D or provide a #ifndef default)"
                               : ""));
        }
        switch (sym->kind) {
          case Symbol::Kind::kScalar:
            e->type = sym->type;
            return;
          case Symbol::Kind::kPointer:
            e->type = sym->type;
            return;
          case Symbol::Kind::kSharedArray:
            e->type = TypeRef::Pointer(sym->type.scalar, vgpu::Space::kShared);
            return;
          case Symbol::Kind::kLocalArray:
            e->type = TypeRef::Pointer(sym->type.scalar, vgpu::Space::kLocal);
            return;
          case Symbol::Kind::kConstArray:
            e->type = TypeRef::Pointer(sym->type.scalar, vgpu::Space::kConst);
            return;
          case Symbol::Kind::kTexture:
            Fail(e->line, "textures may only be used through tex2D()/tex1Dfetch()");
        }
        return;
      }
      case ExprKind::kUnary: {
        CheckExpr(e->a);
        if (e->a->type.is_pointer) Fail(e->line, "unary operator on a pointer");
        Scalar s = e->a->type.scalar;
        switch (e->un_op) {
          case UnOp::kNot:
            e->type = TypeRef::Value(Scalar::kBool);
            return;
          case UnOp::kBitNot:
            if (IsFloatScalar(s)) Fail(e->line, "~ requires an integer operand");
            if (s == Scalar::kBool) Coerce(e->a, Scalar::kInt), s = Scalar::kInt;
            e->type = TypeRef::Value(s);
            return;
          case UnOp::kNeg:
          case UnOp::kPlus:
            if (s == Scalar::kBool) Coerce(e->a, Scalar::kInt), s = Scalar::kInt;
            e->type = TypeRef::Value(s);
            return;
        }
        return;
      }
      case ExprKind::kBinary: {
        CheckExpr(e->a);
        CheckExpr(e->b);
        // Pointer arithmetic: ptr +/- integer.
        if (e->a->type.is_pointer || e->b->type.is_pointer) {
          if (e->bin_op != BinOp::kAdd && e->bin_op != BinOp::kSub) {
            Fail(e->line, "only + and - are defined on pointers");
          }
          if (e->a->type.is_pointer && e->b->type.is_pointer) {
            Fail(e->line, "pointer-pointer arithmetic is not supported");
          }
          if (e->b->type.is_pointer) {
            if (e->bin_op == BinOp::kSub) Fail(e->line, "integer - pointer is not valid");
            std::swap(e->a, e->b);  // normalize to ptr + int
          }
          if (IsFloatScalar(e->b->type.scalar)) Fail(e->line, "pointer offset must be an integer");
          e->type = e->a->type;
          return;
        }
        switch (e->bin_op) {
          case BinOp::kLogAnd:
          case BinOp::kLogOr:
            e->type = TypeRef::Value(Scalar::kBool);
            return;
          case BinOp::kLt: case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
          case BinOp::kEq: case BinOp::kNe: {
            Scalar common = Promote(e->a->type.scalar, e->b->type.scalar);
            if (common == Scalar::kBool) common = Scalar::kInt;
            Coerce(e->a, common);
            Coerce(e->b, common);
            e->type = TypeRef::Value(Scalar::kBool);
            return;
          }
          case BinOp::kShl:
          case BinOp::kShr: {
            if (IsFloatScalar(e->a->type.scalar) || IsFloatScalar(e->b->type.scalar)) {
              Fail(e->line, "shift requires integer operands");
            }
            if (e->a->type.scalar == Scalar::kBool) Coerce(e->a, Scalar::kInt);
            Coerce(e->b, Scalar::kUint);
            e->type = e->a->type;
            return;
          }
          case BinOp::kAnd: case BinOp::kOr: case BinOp::kXor:
            if (IsFloatScalar(e->a->type.scalar) || IsFloatScalar(e->b->type.scalar)) {
              Fail(e->line, "bitwise operators require integer operands");
            }
            [[fallthrough]];
          default: {
            Scalar common = Promote(e->a->type.scalar, e->b->type.scalar);
            if (common == Scalar::kBool) common = Scalar::kInt;
            Coerce(e->a, common);
            Coerce(e->b, common);
            e->type = TypeRef::Value(common);
            return;
          }
        }
      }
      case ExprKind::kAssign: {
        CheckExpr(e->a);
        CheckExpr(e->b);
        CheckLvalue(*e->a);
        if (e->a->type.is_pointer) {
          // Pointer reassignment (e.g. walking a base pointer).
          if (!e->b->type.is_pointer && !e->is_compound) {
            Fail(e->line, "assigning a scalar to a pointer");
          }
          if (e->is_compound) {
            if (e->assign_op != BinOp::kAdd && e->assign_op != BinOp::kSub) {
              Fail(e->line, "only += and -= are defined on pointers");
            }
            if (IsFloatScalar(e->b->type.scalar)) Fail(e->line, "pointer offset must be integer");
          }
          e->type = e->a->type;
          return;
        }
        Coerce(e->b, e->a->type.scalar);
        e->type = e->a->type;
        return;
      }
      case ExprKind::kTernary: {
        CheckCondition(e->a);
        CheckExpr(e->b);
        CheckExpr(e->c);
        if (e->b->type.is_pointer != e->c->type.is_pointer) {
          Fail(e->line, "?: branches must both be pointers or both scalars");
        }
        if (e->b->type.is_pointer) {
          e->type = e->b->type;
          return;
        }
        Scalar common = Promote(e->b->type.scalar, e->c->type.scalar);
        Coerce(e->b, common);
        Coerce(e->c, common);
        e->type = TypeRef::Value(common);
        return;
      }
      case ExprKind::kIndex: {
        CheckExpr(e->a);
        CheckExpr(e->b);
        if (!e->a->type.is_pointer) Fail(e->line, "indexing a non-pointer");
        if (IsFloatScalar(e->b->type.scalar)) Fail(e->line, "array index must be an integer");
        e->type = TypeRef::Value(e->a->type.scalar);
        return;
      }
      case ExprKind::kCast: {
        CheckExpr(e->a);
        if (e->type.is_pointer) {
          // (float*)expr — reinterpret an integer or pointer as a pointer.
          if (!e->a->type.is_pointer && IsFloatScalar(e->a->type.scalar)) {
            Fail(e->line, "cannot cast a float to a pointer");
          }
          // Preserve the source address space when casting pointer->pointer.
          if (e->a->type.is_pointer) e->type.space = e->a->type.space;
          return;
        }
        if (e->a->type.is_pointer) {
          if (e->type.scalar != Scalar::kUlong && e->type.scalar != Scalar::kLong) {
            Fail(e->line, "pointers may only be cast to (unsigned) long long");
          }
        }
        return;
      }
      case ExprKind::kCall: {
        if (e->name == "tex2D" || e->name == "tex1Dfetch") {
          bool is2d = e->name == "tex2D";
          std::size_t want = is2d ? 3u : 2u;
          if (e->args.size() != want) {
            Fail(e->line, e->name + ": wrong number of arguments");
          }
          const Expr& t = *e->args[0];
          const Symbol* sym = t.kind == ExprKind::kVarRef ? Lookup(t.name) : nullptr;
          if (!sym || sym->kind != Symbol::Kind::kTexture) {
            Fail(e->line, e->name + ": first argument must name a __texture");
          }
          e->args[0]->type = TypeRef::Value(Scalar::kFloat);  // placeholder; never lowered
          for (std::size_t i = 1; i < e->args.size(); ++i) {
            CheckExpr(e->args[i]);
            Coerce(e->args[i], is2d ? Scalar::kFloat : Scalar::kInt);
          }
          e->type = TypeRef::Value(Scalar::kFloat);
          return;
        }
        if (IsAtomicName(e->name)) {
          if (e->args.size() != (e->name == "atomicCAS" ? 3u : 2u)) {
            Fail(e->line, e->name + ": wrong number of arguments");
          }
          CheckExpr(e->args[0]);
          if (!e->args[0]->type.is_pointer) Fail(e->line, e->name + ": first argument must be a pointer");
          Scalar elem = e->args[0]->type.scalar;
          for (std::size_t i = 1; i < e->args.size(); ++i) {
            CheckExpr(e->args[i]);
            Coerce(e->args[i], elem);
          }
          e->type = TypeRef::Value(elem);
          return;
        }
        auto it = Intrinsics().find(e->name);
        if (it == Intrinsics().end()) {
          Fail(e->line, Format("unknown function '%s' (Kernel-C supports intrinsics only; "
                               "there are no user function calls)",
                               e->name.c_str()));
        }
        const Intrinsic& sig = it->second;
        if (e->args.size() != sig.args.size()) {
          Fail(e->line, Format("%s expects %zu arguments, got %zu", e->name.c_str(),
                               sig.args.size(), e->args.size()));
        }
        for (std::size_t i = 0; i < e->args.size(); ++i) {
          CheckExpr(e->args[i]);
          if (e->args[i]->type.is_pointer) Fail(e->line, "pointer passed to " + e->name);
          Coerce(e->args[i], sig.args[i]);
        }
        e->type = TypeRef::Value(sig.result);
        return;
      }
    }
  }

  ModuleAst& module_;
  KernelDecl& kernel_;
  std::vector<std::map<std::string, Symbol>> scopes_;
};

}  // namespace

void AnalyzeKernel(ModuleAst& module, KernelDecl& kernel) {
  KernelSema(module, kernel).Run();
}

void Analyze(ModuleAst& module) {
  // Fold and validate constant-array sizes; assign constant-segment offsets.
  unsigned offset = 0;
  for (auto& c : module.constants) {
    // Sizes may reference earlier macros only (already literal after
    // preprocessing); no symbols are in scope here.
    FoldInPlace(c.size);
    auto n = EvalConstInt(*c.size);
    if (!n || *n <= 0) {
      Fail(c.line, Format("__constant array '%s' needs a positive compile-time size "
                          "(CUDA requires constant memory sizes to be fixed at compile time; "
                          "specialize the size with -D)",
                          c.name.c_str()));
    }
    c.folded_size = *n;
    offset = static_cast<unsigned>(AlignUp<std::uint64_t>(offset, ScalarSize(c.elem)));
    c.offset = offset;
    offset += static_cast<unsigned>(*n * ScalarSize(c.elem));
    if (offset > 64 * 1024) {
      Fail(c.line, "constant memory exceeds the 64 KB limit");
    }
  }
  for (auto& k : module.kernels) AnalyzeKernel(module, k);
}

}  // namespace kspec::kcc
