#include "kcc/lower.hpp"

#include <map>

#include "kcc/sema.hpp"
#include "support/math.hpp"
#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::kcc {

namespace {

using vgpu::CmpOp;
using vgpu::Instr;
using vgpu::Opcode;
using vgpu::Operand;
using vgpu::Space;
using vgpu::Type;

// A lowered value: an operand (register or immediate) plus its IR type and,
// for pointers, the address space.
struct RV {
  Operand op;
  Type type = Type::kI32;
  bool is_pointer = false;
  Space space = Space::kGlobal;
};

class Lowerer {
 public:
  Lowerer(const ModuleAst& module, const KernelDecl& kernel) : module_(module), kernel_(kernel) {}

  LoweredKernel Run() {
    LoweredKernel out;
    out.name = kernel_.name;

    for (const auto& c : module_.constants) {
      const_arrays_[c.name] = {c.offset, ScalarToIr(c.elem)};
    }
    for (std::size_t t = 0; t < module_.textures.size(); ++t) {
      texture_slots_[module_.textures[t].name] = static_cast<int>(t);
    }
    for (const auto& p : kernel_.params) {
      int reg = NewReg(p.type.is_pointer ? Type::kU64 : ScalarToIr(p.type.scalar));
      vars_[p.name] = reg;
      out.params.push_back({p.name, p.type.is_pointer ? Type::kU64 : ScalarToIr(p.type.scalar)});
    }

    // Shared memory is laid out up front (statics first) so dynamic
    // extern-__shared__ arrays can base at the end of the static segment
    // regardless of declaration order.
    AllocateSharedArrays(*kernel_.body);

    LowerStmt(*kernel_.body);
    Emit(Instr::Make(Opcode::kExit, Type::kI32, -1));
    ResolveLabels();

    out.code = std::move(code_);
    out.num_vregs = next_reg_;
    out.vreg_types = std::move(reg_types_);
    out.static_smem_bytes = smem_bytes_;
    return out;
  }

 private:
  [[noreturn]] void Fail(int line, const std::string& msg) {
    throw CompileError(Format("line %d: %s", line, msg.c_str()));
  }

  int NewReg(Type t) {
    reg_types_.push_back(t);
    return next_reg_++;
  }

  void Emit(Instr i) { code_.push_back(i); }

  int NewLabel() {
    label_pc_.push_back(-1);
    return static_cast<int>(label_pc_.size()) - 1;
  }
  void Bind(int label) { label_pc_[label] = static_cast<int>(code_.size()); }

  void ResolveLabels() {
    for (auto& i : code_) {
      if (i.op == Opcode::kBra || i.op == Opcode::kBraPred) {
        KSPEC_CHECK(i.target >= 0 && label_pc_[i.target] >= 0);
        i.target = label_pc_[i.target];
        if (i.reconv >= 0) i.reconv = label_pc_[i.reconv];
      }
    }
  }

  // ----------------------------------------------------------- helpers ----

  // Materializes `v` into a register (immediates get a mov).
  int ToReg(const RV& v) {
    if (v.op.is_reg()) return v.op.reg;
    int r = NewReg(v.type);
    Emit(Instr::Make(Opcode::kMov, v.type, r, v.op));
    return r;
  }

  // Emits a conversion of `v` to IR type `to` (no-op when equal).
  RV Convert(RV v, Type to) {
    if (v.type == to) return v;
    if (v.op.is_imm()) {
      // Convert immediates at compile time (constant folding across types).
      return {Operand::Imm(ConvertImm(v.op.imm, v.type, to)), to, v.is_pointer, v.space};
    }
    int r = NewReg(to);
    Instr i = Instr::Make(Opcode::kCvt, to, r, v.op);
    i.type2 = v.type;
    Emit(i);
    return {Operand::Reg(r), to, v.is_pointer, v.space};
  }

  static std::uint64_t ConvertImm(std::uint64_t raw, Type from, Type to) {
    // Decode to the widest faithful representation, then encode.
    double d = 0;
    std::int64_t s = 0;
    bool is_f = vgpu::IsFloatType(from);
    switch (from) {
      case Type::kF32: d = vgpu::DecodeF32(raw); break;
      case Type::kF64: d = vgpu::DecodeF64(raw); break;
      case Type::kI32: s = vgpu::DecodeI32(raw); break;
      case Type::kU32: s = static_cast<std::uint32_t>(raw); break;
      case Type::kPred: s = raw ? 1 : 0; break;
      default: s = static_cast<std::int64_t>(raw); break;
    }
    if (is_f) {
      switch (to) {
        case Type::kF32: return vgpu::EncodeF32(static_cast<float>(d));
        case Type::kF64: return vgpu::EncodeF64(d);
        case Type::kI32: return vgpu::EncodeI32(static_cast<std::int32_t>(d));
        case Type::kU32: return static_cast<std::uint32_t>(static_cast<std::int64_t>(d));
        case Type::kPred: return d != 0;
        default: return static_cast<std::uint64_t>(static_cast<std::int64_t>(d));
      }
    }
    switch (to) {
      case Type::kF32: return vgpu::EncodeF32(static_cast<float>(from == Type::kU64
                                                                     ? static_cast<double>(raw)
                                                                     : static_cast<double>(s)));
      case Type::kF64: return vgpu::EncodeF64(from == Type::kU64 ? static_cast<double>(raw)
                                                                 : static_cast<double>(s));
      case Type::kI32: return vgpu::EncodeI32(static_cast<std::int32_t>(s));
      case Type::kU32: return static_cast<std::uint32_t>(s);
      case Type::kPred: return s != 0;
      default: return static_cast<std::uint64_t>(s);
    }
  }

  // Lowers `e` to a predicate register (0/1) for branching.
  int LowerPred(const Expr& e) {
    RV v = LowerExpr(e, -1);
    if (v.type == Type::kPred) return ToReg(v);
    // value != 0
    int p = NewReg(Type::kPred);
    Instr i = Instr::Make(Opcode::kSetp, v.type, p, v.op,
                          vgpu::IsFloatType(v.type)
                              ? (v.type == Type::kF32 ? Operand::ImmF32(0.0f)
                                                      : Operand::Imm(vgpu::EncodeF64(0.0)))
                              : Operand::Imm(0));
    i.cmp = CmpOp::kNe;
    Emit(i);
    return p;
  }

  // ------------------------------------------------------- expressions ----

  // Lowers `e`; when `into` >= 0 and the expression naturally produces a
  // single instruction, the result is written directly to that register.
  RV LowerExpr(const Expr& e, int into) {
    switch (e.kind) {
      case ExprKind::kIntLit: {
        Type t = ScalarToIr(e.type.scalar);
        std::uint64_t raw = e.int_value;
        if (t == Type::kI32) raw = vgpu::EncodeI32(static_cast<std::int32_t>(raw));
        if (t == Type::kU32) raw = static_cast<std::uint32_t>(raw);
        return {Operand::Imm(raw), t};
      }
      case ExprKind::kFloatLit: {
        Type t = ScalarToIr(e.type.scalar);
        return {Operand::Imm(t == Type::kF32 ? vgpu::EncodeF32(static_cast<float>(e.float_value))
                                             : vgpu::EncodeF64(e.float_value)),
                t};
      }
      case ExprKind::kSreg: {
        int r = into >= 0 ? into : NewReg(Type::kU32);
        Emit(Instr::Make(Opcode::kSreg, Type::kU32, r,
                         Operand::Imm(static_cast<std::uint64_t>(e.sreg))));
        return {Operand::Reg(r), Type::kU32};
      }
      case ExprKind::kVarRef: {
        auto it = vars_.find(e.name);
        if (it != vars_.end()) {
          Type t = reg_types_[it->second];
          return {Operand::Reg(it->second), t, e.type.is_pointer, e.type.space};
        }
        // Array base: shared or constant.
        auto sh = shared_arrays_.find(e.name);
        if (sh != shared_arrays_.end()) {
          return {Operand::Imm(sh->second.first), Type::kU64, true, Space::kShared};
        }
        auto ca = const_arrays_.find(e.name);
        if (ca != const_arrays_.end()) {
          return {Operand::Imm(ca->second.first), Type::kU64, true, Space::kConst};
        }
        Fail(e.line, "unresolved identifier in lowering: " + e.name);
      }
      case ExprKind::kCast: {
        RV v = LowerExpr(*e.a, -1);
        if (e.type.is_pointer) {
          // Reinterpret as pointer; adopt the cast's space unless the source
          // already was a pointer.
          RV out = Convert(v, Type::kU64);
          out.is_pointer = true;
          out.space = v.is_pointer ? v.space : e.type.space;
          return out;
        }
        RV out = Convert(v, ScalarToIr(e.type.scalar));
        out.is_pointer = false;
        return out;
      }
      case ExprKind::kUnary: return LowerUnary(e, into);
      case ExprKind::kBinary: return LowerBinary(e, into);
      case ExprKind::kTernary: {
        int p = LowerPred(*e.a);
        RV b = LowerExpr(*e.b, -1);
        RV c = LowerExpr(*e.c, -1);
        Type t = e.type.is_pointer ? Type::kU64 : ScalarToIr(e.type.scalar);
        int r = into >= 0 ? into : NewReg(t);
        Emit(Instr::Make(Opcode::kSel, t, r, b.op, c.op, Operand::Reg(p)));
        return {Operand::Reg(r), t, e.type.is_pointer,
                e.type.is_pointer ? b.space : Space::kGlobal};
      }
      case ExprKind::kIndex: {
        RV addr = LowerAddress(e);
        Type t = ScalarToIr(e.type.scalar);
        int r = into >= 0 ? into : NewReg(t);
        Instr i = Instr::Make(Opcode::kLd, t, r, addr.op, Operand::Imm(addr_offset_));
        i.space = addr.space;
        Emit(i);
        return {Operand::Reg(r), t};
      }
      case ExprKind::kAssign: return LowerAssign(e);
      case ExprKind::kCall: return LowerCall(e, into);
    }
    Fail(e.line, "unhandled expression kind");
  }

  // Computes the address of Index expression `e`; the byte offset part is
  // left in addr_offset_ (folded into the ld/st immediate field).
  RV LowerAddress(const Expr& e) {
    KSPEC_CHECK(e.kind == ExprKind::kIndex);
    RV base = LowerExpr(*e.a, -1);
    if (!base.is_pointer) Fail(e.line, "indexing a non-pointer value");
    std::size_t esize = ScalarSize(e.type.scalar);
    RV idx = LowerExpr(*e.b, -1);

    addr_offset_ = 0;
    if (idx.op.is_imm()) {
      std::int64_t iv;
      if (idx.type == Type::kI32) iv = vgpu::DecodeI32(idx.op.imm);
      else if (idx.type == Type::kU32) iv = static_cast<std::uint32_t>(idx.op.imm);
      else iv = static_cast<std::int64_t>(idx.op.imm);
      std::int64_t byte_off = iv * static_cast<std::int64_t>(esize);
      if (base.op.is_imm()) {
        // Fully static address (specialized pointer + constant index).
        return {Operand::Imm(base.op.imm + static_cast<std::uint64_t>(byte_off)), Type::kU64,
                true, base.space};
      }
      addr_offset_ = static_cast<std::uint64_t>(byte_off);
      return base;
    }

    RV idx64 = Convert(idx, idx.type == Type::kU32 ? Type::kU64 : Type::kI64);
    idx64 = Convert(idx64, Type::kU64);
    int scaled = NewReg(Type::kU64);
    Emit(Instr::Make(Opcode::kMul, Type::kU64, scaled, idx64.op,
                     Operand::Imm(static_cast<std::uint64_t>(esize))));
    int addr = NewReg(Type::kU64);
    Emit(Instr::Make(Opcode::kAdd, Type::kU64, addr, base.op, Operand::Reg(scaled)));
    return {Operand::Reg(addr), Type::kU64, true, base.space};
  }

  RV LowerUnary(const Expr& e, int into) {
    RV a = LowerExpr(*e.a, -1);
    Type t = ScalarToIr(e.type.scalar);
    switch (e.un_op) {
      case UnOp::kPlus:
        return a;
      case UnOp::kNeg: {
        int r = into >= 0 ? into : NewReg(t);
        Emit(Instr::Make(Opcode::kNeg, t, r, a.op));
        return {Operand::Reg(r), t};
      }
      case UnOp::kBitNot: {
        int r = into >= 0 ? into : NewReg(t);
        Emit(Instr::Make(Opcode::kNot, t, r, a.op));
        return {Operand::Reg(r), t};
      }
      case UnOp::kNot: {
        int r = into >= 0 ? into : NewReg(Type::kPred);
        Instr i = Instr::Make(Opcode::kSetp, a.type, r, a.op,
                              vgpu::IsFloatType(a.type)
                                  ? (a.type == Type::kF32 ? Operand::ImmF32(0.0f)
                                                          : Operand::Imm(vgpu::EncodeF64(0.0)))
                                  : Operand::Imm(0));
        i.cmp = CmpOp::kEq;
        Emit(i);
        return {Operand::Reg(r), Type::kPred};
      }
    }
    Fail(e.line, "unhandled unary operator");
  }

  RV LowerBinary(const Expr& e, int into) {
    // Pointer arithmetic: scale the integer side by the element size.
    if (e.type.is_pointer) {
      RV base = LowerExpr(*e.a, -1);
      RV off = LowerExpr(*e.b, -1);
      std::size_t esize = ScalarSize(e.type.scalar);
      RV off64 = Convert(off, off.type == Type::kU32 || off.type == Type::kU64 ? Type::kU64
                                                                               : Type::kI64);
      off64 = Convert(off64, Type::kU64);
      int scaled;
      if (off64.op.is_imm()) {
        std::uint64_t imm = off64.op.imm * esize;
        if (e.bin_op == BinOp::kSub) imm = ~imm + 1;  // negate
        if (base.op.is_imm()) {
          return {Operand::Imm(base.op.imm + imm), Type::kU64, true, base.space};
        }
        int r = into >= 0 ? into : NewReg(Type::kU64);
        Emit(Instr::Make(Opcode::kAdd, Type::kU64, r, base.op, Operand::Imm(imm)));
        return {Operand::Reg(r), Type::kU64, true, base.space};
      }
      scaled = NewReg(Type::kU64);
      Emit(Instr::Make(Opcode::kMul, Type::kU64, scaled, off64.op,
                       Operand::Imm(static_cast<std::uint64_t>(esize))));
      int r = into >= 0 ? into : NewReg(Type::kU64);
      Emit(Instr::Make(e.bin_op == BinOp::kSub ? Opcode::kSub : Opcode::kAdd, Type::kU64, r,
                       base.op, Operand::Reg(scaled)));
      return {Operand::Reg(r), Type::kU64, true, base.space};
    }

    switch (e.bin_op) {
      case BinOp::kLogAnd:
      case BinOp::kLogOr: {
        // Branch-free logical operators (both sides evaluated).
        int pa = LowerPred(*e.a);
        int pb = LowerPred(*e.b);
        int r = into >= 0 ? into : NewReg(Type::kPred);
        Emit(Instr::Make(e.bin_op == BinOp::kLogAnd ? Opcode::kAnd : Opcode::kOr, Type::kPred, r,
                         Operand::Reg(pa), Operand::Reg(pb)));
        return {Operand::Reg(r), Type::kPred};
      }
      case BinOp::kLt: case BinOp::kLe: case BinOp::kGt:
      case BinOp::kGe: case BinOp::kEq: case BinOp::kNe: {
        RV a = LowerExpr(*e.a, -1);
        RV b = LowerExpr(*e.b, -1);
        int r = into >= 0 ? into : NewReg(Type::kPred);
        Instr i = Instr::Make(Opcode::kSetp, a.type, r, a.op, b.op);
        switch (e.bin_op) {
          case BinOp::kLt: i.cmp = CmpOp::kLt; break;
          case BinOp::kLe: i.cmp = CmpOp::kLe; break;
          case BinOp::kGt: i.cmp = CmpOp::kGt; break;
          case BinOp::kGe: i.cmp = CmpOp::kGe; break;
          case BinOp::kEq: i.cmp = CmpOp::kEq; break;
          default: i.cmp = CmpOp::kNe; break;
        }
        Emit(i);
        return {Operand::Reg(r), Type::kPred};
      }
      default:
        break;
    }

    RV a = LowerExpr(*e.a, -1);
    RV b = LowerExpr(*e.b, -1);
    Type t = ScalarToIr(e.type.scalar);
    Opcode op;
    switch (e.bin_op) {
      case BinOp::kAdd: op = Opcode::kAdd; break;
      case BinOp::kSub: op = Opcode::kSub; break;
      case BinOp::kMul: op = Opcode::kMul; break;
      case BinOp::kDiv: op = Opcode::kDiv; break;
      case BinOp::kRem: op = Opcode::kRem; break;
      case BinOp::kAnd: op = Opcode::kAnd; break;
      case BinOp::kOr: op = Opcode::kOr; break;
      case BinOp::kXor: op = Opcode::kXor; break;
      case BinOp::kShl: op = Opcode::kShl; break;
      case BinOp::kShr: op = Opcode::kShr; break;
      default: Fail(e.line, "unhandled binary operator");
    }
    int r = into >= 0 ? into : NewReg(t);
    Emit(Instr::Make(op, t, r, a.op, b.op));
    return {Operand::Reg(r), t};
  }

  RV LowerCall(const Expr& e, int into) {
    // Texture sampling.
    if (e.name == "tex2D" || e.name == "tex1Dfetch") {
      auto slot = texture_slots_.find(e.args[0]->name);
      if (slot == texture_slots_.end()) Fail(e.line, "unknown texture " + e.args[0]->name);
      int r = into >= 0 ? into : NewReg(Type::kF32);
      if (e.name == "tex2D") {
        RV x = LowerExpr(*e.args[1], -1);
        RV y = LowerExpr(*e.args[2], -1);
        Instr i = Instr::Make(Opcode::kTex2D, Type::kF32, r, x.op, y.op);
        i.target = slot->second;
        Emit(i);
      } else {
        RV idx = LowerExpr(*e.args[1], -1);
        Instr i = Instr::Make(Opcode::kTex1D, Type::kF32, r, idx.op);
        i.target = slot->second;
        Emit(i);
      }
      return {Operand::Reg(r), Type::kF32};
    }
    // Atomics.
    if (e.name.rfind("atomic", 0) == 0) {
      RV ptr = LowerExpr(*e.args[0], -1);
      Type t = ScalarToIr(e.type.scalar);
      Opcode op = e.name == "atomicAdd"    ? Opcode::kAtomAdd
                  : e.name == "atomicMin"  ? Opcode::kAtomMin
                  : e.name == "atomicMax"  ? Opcode::kAtomMax
                  : e.name == "atomicExch" ? Opcode::kAtomExch
                                           : Opcode::kAtomCas;
      RV v1 = LowerExpr(*e.args[1], -1);
      int r = into >= 0 ? into : NewReg(t);
      Instr i = Instr::Make(op, t, r, ptr.op, v1.op);
      if (op == Opcode::kAtomCas) {
        RV v2 = LowerExpr(*e.args[2], -1);
        i.c = v2.op;
      }
      i.space = ptr.space;
      Emit(i);
      return {Operand::Reg(r), t};
    }

    Type t = ScalarToIr(e.type.scalar);
    auto unary = [&](Opcode op) {
      RV a = LowerExpr(*e.args[0], -1);
      int r = into >= 0 ? into : NewReg(t);
      Emit(Instr::Make(op, t, r, a.op));
      return RV{Operand::Reg(r), t};
    };
    auto binary = [&](Opcode op) {
      RV a = LowerExpr(*e.args[0], -1);
      RV b = LowerExpr(*e.args[1], -1);
      int r = into >= 0 ? into : NewReg(t);
      Emit(Instr::Make(op, t, r, a.op, b.op));
      return RV{Operand::Reg(r), t};
    };

    if (e.name == "min" || e.name == "umin" || e.name == "fminf") return binary(Opcode::kMin);
    if (e.name == "max" || e.name == "umax" || e.name == "fmaxf") return binary(Opcode::kMax);
    if (e.name == "abs" || e.name == "fabsf" || e.name == "fabs") return unary(Opcode::kAbs);
    if (e.name == "sqrtf" || e.name == "sqrt" || e.name == "__fsqrt_rn") return unary(Opcode::kSqrt);
    if (e.name == "rsqrtf") return unary(Opcode::kRsqrt);
    if (e.name == "floorf" || e.name == "floor") return unary(Opcode::kFloor);
    if (e.name == "ceilf" || e.name == "ceil") return unary(Opcode::kCeil);
    if (e.name == "expf" || e.name == "__expf") return unary(Opcode::kExp);
    if (e.name == "logf" || e.name == "__logf") return unary(Opcode::kLog);
    if (e.name == "sinf" || e.name == "__sinf") return unary(Opcode::kSin);
    if (e.name == "cosf" || e.name == "__cosf") return unary(Opcode::kCos);
    if (e.name == "__mul24" || e.name == "__umul24") return binary(Opcode::kMul24);
    if (e.name == "fmaf" || e.name == "fma") {
      RV a = LowerExpr(*e.args[0], -1);
      RV b = LowerExpr(*e.args[1], -1);
      RV c = LowerExpr(*e.args[2], -1);
      int r = into >= 0 ? into : NewReg(t);
      Emit(Instr::Make(Opcode::kMad, t, r, a.op, b.op, c.op));
      return RV{Operand::Reg(r), t};
    }
    Fail(e.line, "unhandled intrinsic: " + e.name);
  }

  RV LowerAssign(const Expr& e) {
    const Expr& target = *e.a;
    if (target.kind == ExprKind::kVarRef) {
      auto it = vars_.find(target.name);
      if (it == vars_.end()) Fail(e.line, "assignment to unknown variable " + target.name);
      int dst = it->second;
      Type t = reg_types_[dst];
      if (e.is_compound) {
        // dst = dst <op> value
        RV b = LowerExpr(*e.b, -1);
        Opcode op;
        switch (e.assign_op) {
          case BinOp::kAdd: op = Opcode::kAdd; break;
          case BinOp::kSub: op = Opcode::kSub; break;
          case BinOp::kMul: op = Opcode::kMul; break;
          case BinOp::kDiv: op = Opcode::kDiv; break;
          case BinOp::kRem: op = Opcode::kRem; break;
          case BinOp::kAnd: op = Opcode::kAnd; break;
          case BinOp::kOr: op = Opcode::kOr; break;
          case BinOp::kXor: op = Opcode::kXor; break;
          case BinOp::kShl: op = Opcode::kShl; break;
          case BinOp::kShr: op = Opcode::kShr; break;
          default: Fail(e.line, "unhandled compound assignment");
        }
        if (target.type.is_pointer) {
          // ptr += n scales by element size.
          std::size_t esize = ScalarSize(target.type.scalar);
          RV off64 = Convert(b, Type::kU64);
          if (off64.op.is_imm()) {
            std::uint64_t imm = off64.op.imm * esize;
            if (e.assign_op == BinOp::kSub) imm = ~imm + 1;
            Emit(Instr::Make(Opcode::kAdd, Type::kU64, dst, Operand::Reg(dst), Operand::Imm(imm)));
          } else {
            int scaled = NewReg(Type::kU64);
            Emit(Instr::Make(Opcode::kMul, Type::kU64, scaled, off64.op,
                             Operand::Imm(static_cast<std::uint64_t>(esize))));
            Emit(Instr::Make(op, Type::kU64, dst, Operand::Reg(dst), Operand::Reg(scaled)));
          }
        } else {
          RV bc = Convert(b, t);
          Emit(Instr::Make(op, t, dst, Operand::Reg(dst), bc.op));
        }
        return {Operand::Reg(dst), t, target.type.is_pointer, target.type.space};
      }
      // Plain assignment: try to lower the RHS directly into dst.
      LowerExprInto(*e.b, dst, t);
      return {Operand::Reg(dst), t, target.type.is_pointer, target.type.space};
    }
    if (target.kind == ExprKind::kIndex) {
      Type t = ScalarToIr(target.type.scalar);
      RV value;
      if (e.is_compound) {
        // mem[i] op= v  ->  load, op, store
        RV addr = LowerAddress(target);
        std::uint64_t off = addr_offset_;
        int loaded = NewReg(t);
        Instr ld = Instr::Make(Opcode::kLd, t, loaded, addr.op, Operand::Imm(off));
        ld.space = addr.space;
        Emit(ld);
        RV b = Convert(LowerExpr(*e.b, -1), t);
        Opcode op;
        switch (e.assign_op) {
          case BinOp::kAdd: op = Opcode::kAdd; break;
          case BinOp::kSub: op = Opcode::kSub; break;
          case BinOp::kMul: op = Opcode::kMul; break;
          case BinOp::kDiv: op = Opcode::kDiv; break;
          case BinOp::kAnd: op = Opcode::kAnd; break;
          case BinOp::kOr: op = Opcode::kOr; break;
          case BinOp::kXor: op = Opcode::kXor; break;
          case BinOp::kShl: op = Opcode::kShl; break;
          case BinOp::kShr: op = Opcode::kShr; break;
          case BinOp::kRem: op = Opcode::kRem; break;
          default: Fail(e.line, "unhandled compound assignment");
        }
        int res = NewReg(t);
        Emit(Instr::Make(op, t, res, Operand::Reg(loaded), b.op));
        Instr st = Instr::Make(Opcode::kSt, t, -1, addr.op, Operand::Imm(off),
                               Operand::Reg(res));
        st.space = addr.space;
        Emit(st);
        return {Operand::Reg(res), t};
      }
      value = Convert(LowerExpr(*e.b, -1), t);
      RV addr = LowerAddress(target);
      Instr st = Instr::Make(Opcode::kSt, t, -1, addr.op, Operand::Imm(addr_offset_), value.op);
      st.space = addr.space;
      Emit(st);
      return value;
    }
    Fail(e.line, "invalid assignment target");
  }

  // Lowers `e` and ensures the value lands in register `dst` of type `t`.
  RV LowerExprInto(const Expr& e, int dst, Type t) {
    // Single-instruction expressions can target dst directly when no
    // conversion is needed.
    Type et = e.type.is_pointer ? Type::kU64 : ScalarToIr(e.type.scalar);
    if (et == t &&
        (e.kind == ExprKind::kBinary || e.kind == ExprKind::kUnary ||
         e.kind == ExprKind::kCall || e.kind == ExprKind::kTernary ||
         e.kind == ExprKind::kSreg || e.kind == ExprKind::kIndex)) {
      RV v = LowerExpr(e, dst);
      if (v.op.is_reg() && v.op.reg == dst) return v;
      // The lowering chose not to honor the hint (e.g. pointer arithmetic);
      // fall through to an explicit move.
      Emit(Instr::Make(Opcode::kMov, t, dst, v.op));
      return {Operand::Reg(dst), t};
    }
    RV v = Convert(LowerExpr(e, -1), t);
    if (v.op.is_reg() && v.op.reg == dst) return v;
    Emit(Instr::Make(Opcode::kMov, t, dst, v.op));
    return {Operand::Reg(dst), t};
  }

  // -------------------------------------------------------- statements ----

  // Pre-pass: assigns offsets to every shared array (sema guarantees they
  // are at kernel top level). Static arrays pack first; each dynamic array
  // bases at the end of the static segment (CUDA-style: all extern __shared
  // declarations alias the same launch-time allocation).
  void AllocateSharedArrays(const Stmt& body) {
    KSPEC_CHECK(body.kind == StmtKind::kBlock);
    for (const auto& st : body.stmts) {
      if (st->kind != StmtKind::kArrayDecl || st->array_space != Space::kShared) continue;
      if (st->array_dynamic) continue;  // second pass
      auto n = EvalConstInt(*st->array_size);
      KSPEC_CHECK(n.has_value());
      std::size_t esize = ScalarSize(st->array_elem.scalar);
      smem_bytes_ = static_cast<unsigned>(AlignUp<std::uint64_t>(smem_bytes_, esize));
      shared_arrays_[st->array_name] = {smem_bytes_, ScalarToIr(st->array_elem.scalar)};
      smem_bytes_ += static_cast<unsigned>(*n * esize);
    }
    smem_bytes_ = static_cast<unsigned>(AlignUp<std::uint64_t>(smem_bytes_, 8));
    for (const auto& st : body.stmts) {
      if (st->kind != StmtKind::kArrayDecl || st->array_space != Space::kShared ||
          !st->array_dynamic) {
        continue;
      }
      shared_arrays_[st->array_name] = {smem_bytes_, ScalarToIr(st->array_elem.scalar)};
    }
  }

  void LowerStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& st : s.stmts) LowerStmt(*st);
        return;
      case StmtKind::kDecl: {
        for (const auto& d : s.decls) {
          Type t = d.type.is_pointer ? Type::kU64 : ScalarToIr(d.type.scalar);
          int reg = NewReg(t);
          vars_[d.name] = reg;
          if (d.init) LowerExprInto(*d.init, reg, t);
        }
        return;
      }
      case StmtKind::kArrayDecl: {
        if (s.array_space == Space::kShared) {
          KSPEC_CHECK_MSG(shared_arrays_.count(s.array_name), "shared array not pre-allocated");
          return;
        }
        Fail(s.line, "local array survived scalarization (compiler bug)");
      }
      case StmtKind::kExpr:
        LowerExpr(*s.expr, -1);
        return;
      case StmtKind::kSync:
        Emit(Instr::Make(Opcode::kBarSync, Type::kI32, -1));
        return;
      case StmtKind::kReturn:
        Emit(Instr::Make(Opcode::kExit, Type::kI32, -1));
        return;
      case StmtKind::kIf: {
        int p = LowerPred(*s.cond);
        int l_end = NewLabel();
        if (!s.else_branch) {
          Instr br = Instr::Make(Opcode::kBraPred, Type::kPred, -1, Operand::Reg(p));
          br.neg = true;  // skip the then-branch when the condition is false
          br.target = l_end;
          br.reconv = l_end;
          Emit(br);
          LowerStmt(*s.then_branch);
          Bind(l_end);
          return;
        }
        int l_else = NewLabel();
        Instr br = Instr::Make(Opcode::kBraPred, Type::kPred, -1, Operand::Reg(p));
        br.neg = true;
        br.target = l_else;
        br.reconv = l_end;
        Emit(br);
        LowerStmt(*s.then_branch);
        Instr jmp = Instr::Make(Opcode::kBra, Type::kI32, -1);
        jmp.target = l_end;
        Emit(jmp);
        Bind(l_else);
        LowerStmt(*s.else_branch);
        Bind(l_end);
        return;
      }
      case StmtKind::kWhile: {
        int l_head = NewLabel();
        int l_end = NewLabel();
        Bind(l_head);
        int p = LowerPred(*s.cond);
        Instr br = Instr::Make(Opcode::kBraPred, Type::kPred, -1, Operand::Reg(p));
        br.neg = true;
        br.target = l_end;
        br.reconv = l_end;
        Emit(br);
        LowerStmt(*s.body);
        Instr jmp = Instr::Make(Opcode::kBra, Type::kI32, -1);
        jmp.target = l_head;
        Emit(jmp);
        Bind(l_end);
        return;
      }
      case StmtKind::kFor: {
        if (s.init) LowerStmt(*s.init);
        int l_head = NewLabel();
        int l_end = NewLabel();
        Bind(l_head);
        if (s.cond) {
          int p = LowerPred(*s.cond);
          Instr br = Instr::Make(Opcode::kBraPred, Type::kPred, -1, Operand::Reg(p));
          br.neg = true;
          br.target = l_end;
          br.reconv = l_end;
          Emit(br);
        }
        LowerStmt(*s.body);
        if (s.step) LowerExpr(*s.step, -1);
        Instr jmp = Instr::Make(Opcode::kBra, Type::kI32, -1);
        jmp.target = l_head;
        Emit(jmp);
        Bind(l_end);
        return;
      }
    }
  }

  const ModuleAst& module_;
  const KernelDecl& kernel_;

  std::vector<Instr> code_;
  int next_reg_ = 0;
  std::vector<Type> reg_types_;
  std::map<std::string, int> vars_;
  std::map<std::string, std::pair<unsigned, Type>> shared_arrays_;
  std::map<std::string, std::pair<unsigned, Type>> const_arrays_;
  std::map<std::string, int> texture_slots_;
  std::vector<int> label_pc_;
  unsigned smem_bytes_ = 0;
  std::uint64_t addr_offset_ = 0;
};

}  // namespace

LoweredKernel Lower(const ModuleAst& module, const KernelDecl& kernel) {
  return Lowerer(module, kernel).Run();
}

}  // namespace kspec::kcc
