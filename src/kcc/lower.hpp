// AST -> MiniPTX lowering.
//
// Every scalar variable (including kernel parameters) receives a virtual
// register; parameters occupy vregs [0, nparams) and are pre-loaded by the
// interpreter at thread start. Divergent branches are emitted with their
// structured reconvergence label, which the vgpu interpreter's SIMT stack
// relies on. Shared and constant arrays are laid out here; note that by this
// point every size is a compile-time constant (sema enforced), which is the
// CUDA restriction specialization works around.
#pragma once

#include <vector>

#include "kcc/ast.hpp"
#include "vgpu/module.hpp"

namespace kspec::kcc {

struct LoweredKernel {
  std::string name;
  std::vector<vgpu::Instr> code;
  std::vector<vgpu::KernelParam> params;
  int num_vregs = 0;
  std::vector<vgpu::Type> vreg_types;
  unsigned static_smem_bytes = 0;
};

LoweredKernel Lower(const ModuleAst& module, const KernelDecl& kernel);

}  // namespace kspec::kcc
