#include "kcc/unroll.hpp"

#include <functional>
#include <map>
#include <optional>

#include "kcc/sema.hpp"
#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::kcc {

namespace {

// ---------------------------------------------------------------------------
// Substitution: replace every VarRef `name` with a literal clone.
// ---------------------------------------------------------------------------

void SubstExpr(ExprPtr& e, const std::string& name, const Expr& value) {
  if (!e) return;
  if (e->kind == ExprKind::kVarRef && e->name == name) {
    ExprPtr lit = value.Clone();
    lit->line = e->line;
    // Preserve the type the reference had (the induction variable's type).
    lit->type = e->type;
    e = std::move(lit);
    return;
  }
  SubstExpr(e->a, name, value);
  SubstExpr(e->b, name, value);
  SubstExpr(e->c, name, value);
  for (auto& arg : e->args) SubstExpr(arg, name, value);
}

void SubstStmt(StmtPtr& s, const std::string& name, const Expr& value) {
  if (!s) return;
  switch (s->kind) {
    case StmtKind::kDecl:
      for (auto& d : s->decls) SubstExpr(d.init, name, value);
      return;
    case StmtKind::kArrayDecl:
      SubstExpr(s->array_size, name, value);
      return;
    case StmtKind::kExpr:
      SubstExpr(s->expr, name, value);
      return;
    case StmtKind::kIf:
      SubstExpr(s->cond, name, value);
      SubstStmt(s->then_branch, name, value);
      SubstStmt(s->else_branch, name, value);
      return;
    case StmtKind::kWhile:
      SubstExpr(s->cond, name, value);
      SubstStmt(s->body, name, value);
      return;
    case StmtKind::kFor:
      SubstStmt(s->init, name, value);
      SubstExpr(s->cond, name, value);
      SubstExpr(s->step, name, value);
      SubstStmt(s->body, name, value);
      return;
    case StmtKind::kBlock:
      for (auto& st : s->stmts) SubstStmt(st, name, value);
      return;
    default:
      return;
  }
}

// Does any statement in `s` write to variable `name`?
bool WritesVar(const Expr& e, const std::string& name) {
  if (e.kind == ExprKind::kAssign && e.a->kind == ExprKind::kVarRef && e.a->name == name) {
    return true;
  }
  if (e.a && WritesVar(*e.a, name)) return true;
  if (e.b && WritesVar(*e.b, name)) return true;
  if (e.c && WritesVar(*e.c, name)) return true;
  for (const auto& arg : e.args) {
    if (WritesVar(*arg, name)) return true;
  }
  return false;
}

bool WritesVar(const Stmt& s, const std::string& name) {
  switch (s.kind) {
    case StmtKind::kDecl:
      for (const auto& d : s.decls) {
        if (d.init && WritesVar(*d.init, name)) return true;
      }
      return false;
    case StmtKind::kExpr:
      return s.expr && WritesVar(*s.expr, name);
    case StmtKind::kIf:
      return WritesVar(*s.cond, name) || WritesVar(*s.then_branch, name) ||
             (s.else_branch && WritesVar(*s.else_branch, name));
    case StmtKind::kWhile:
      return WritesVar(*s.cond, name) || WritesVar(*s.body, name);
    case StmtKind::kFor:
      return (s.init && WritesVar(*s.init, name)) || (s.cond && WritesVar(*s.cond, name)) ||
             (s.step && WritesVar(*s.step, name)) || WritesVar(*s.body, name);
    case StmtKind::kBlock:
      for (const auto& st : s.stmts) {
        if (WritesVar(*st, name)) return true;
      }
      return false;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Counted-loop recognition
// ---------------------------------------------------------------------------

struct CountedLoop {
  std::string var;
  Scalar var_type = Scalar::kInt;
  // The induction variable's value at each iteration (already fully
  // evaluated; supports additive and geometric updates like i >>= 1).
  std::vector<std::int64_t> values;
};

std::optional<CountedLoop> Recognize(const Stmt& loop, int max_unroll) {
  if (loop.kind != StmtKind::kFor || !loop.init || !loop.cond || !loop.step) return {};
  CountedLoop out;
  std::int64_t start = 0;

  // init: `int i = <const>` or `i = <const>`.
  if (loop.init->kind == StmtKind::kDecl) {
    if (loop.init->decls.size() != 1) return {};
    const VarDecl& d = loop.init->decls[0];
    if (!d.init || d.type.is_pointer) return {};
    auto v = EvalConstInt(*d.init);
    if (!v) return {};
    out.var = d.name;
    out.var_type = d.type.scalar;
    start = *v;
  } else if (loop.init->kind == StmtKind::kExpr && loop.init->expr &&
             loop.init->expr->kind == ExprKind::kAssign && !loop.init->expr->is_compound &&
             loop.init->expr->a->kind == ExprKind::kVarRef) {
    auto v = EvalConstInt(*loop.init->expr->b);
    if (!v) return {};
    out.var = loop.init->expr->a->name;
    out.var_type = loop.init->expr->a->type.scalar;
    start = *v;
  } else {
    return {};
  }

  // cond: `i <op> <const>` (the operand may carry an implicit cast of i).
  const Expr* cond = loop.cond.get();
  if (cond->kind != ExprKind::kBinary) return {};
  const Expr* lhs = cond->a.get();
  while (lhs->kind == ExprKind::kCast) lhs = lhs->a.get();
  if (lhs->kind != ExprKind::kVarRef || lhs->name != out.var) return {};
  auto bound_v = EvalConstInt(*cond->b);
  if (!bound_v) return {};
  const BinOp cmp = cond->bin_op;
  const std::int64_t bound = *bound_v;

  // step: `i op= c` (additive or geometric) or `i = i <op> c`.
  const Expr* step = loop.step.get();
  if (step->kind != ExprKind::kAssign) return {};
  if (step->a->kind != ExprKind::kVarRef || step->a->name != out.var) return {};
  BinOp update_op;
  std::int64_t update_c = 0;
  if (step->is_compound) {
    auto c = EvalConstInt(*step->b);
    if (!c) return {};
    update_op = step->assign_op;
    update_c = *c;
  } else {
    const Expr* rhs = step->b.get();
    while (rhs->kind == ExprKind::kCast) rhs = rhs->a.get();
    if (rhs->kind != ExprKind::kBinary) return {};
    const Expr* base = rhs->a.get();
    while (base->kind == ExprKind::kCast) base = base->a.get();
    if (base->kind != ExprKind::kVarRef || base->name != out.var) return {};
    auto c = EvalConstInt(*rhs->b);
    if (!c) return {};
    update_op = rhs->bin_op;
    update_c = *c;
  }
  auto update = [&](std::int64_t v) -> std::optional<std::int64_t> {
    switch (update_op) {
      case BinOp::kAdd: return update_c == 0 ? std::nullopt : std::optional(v + update_c);
      case BinOp::kSub: return update_c == 0 ? std::nullopt : std::optional(v - update_c);
      case BinOp::kMul: return update_c <= 1 ? std::nullopt : std::optional(v * update_c);
      case BinOp::kDiv: return update_c <= 1 ? std::nullopt : std::optional(v / update_c);
      case BinOp::kShl: return update_c <= 0 ? std::nullopt : std::optional(v << update_c);
      case BinOp::kShr: return update_c <= 0 ? std::nullopt : std::optional(v >> update_c);
      default: return std::nullopt;
    }
  };

  // The body must not reassign the induction variable.
  if (WritesVar(*loop.body, out.var)) return {};

  auto holds = [&](std::int64_t v) {
    switch (cmp) {
      case BinOp::kLt: return v < bound;
      case BinOp::kLe: return v <= bound;
      case BinOp::kGt: return v > bound;
      case BinOp::kGe: return v >= bound;
      case BinOp::kNe: return v != bound;
      default: return false;
    }
  };
  std::int64_t i = start;
  while (holds(i)) {
    out.values.push_back(i);
    if (static_cast<int>(out.values.size()) > max_unroll) return {};
    auto next = update(i);
    if (!next) return {};
    i = *next;
  }
  return out;
}

class Unroller {
 public:
  explicit Unroller(int max_unroll) : max_unroll_(max_unroll) {}

  UnrollResult result;

  void Process(StmtPtr& s) {
    if (!s) return;
    switch (s->kind) {
      case StmtKind::kIf:
        Process(s->then_branch);
        Process(s->else_branch);
        return;
      case StmtKind::kWhile:
        Process(s->body);
        ++result.loops_kept;
        return;
      case StmtKind::kBlock:
        for (auto& st : s->stmts) Process(st);
        return;
      case StmtKind::kFor: {
        FoldStmt(s->init);
        if (s->cond) FoldInPlace(s->cond);
        if (s->step) FoldInPlace(s->step);
        auto loop = Recognize(*s, max_unroll_);
        if (!loop) {
          // Not unrollable; still process the body (inner loops may be).
          Process(s->body);
          ++result.loops_kept;
          return;
        }
        // Replace the For with a Block of substituted body clones.
        auto block = std::make_unique<Stmt>();
        block->kind = StmtKind::kBlock;
        block->line = s->line;
        for (std::int64_t iv : loop->values) {
          StmtPtr body = s->body->Clone();
          ExprPtr lit = MakeIntLit(iv, loop->var_type, s->line);
          SubstStmt(body, loop->var, *lit);
          FoldStmt(body);
          Process(body);  // inner loops may now have constant bounds
          block->stmts.push_back(std::move(body));
        }
        ++result.loops_unrolled;
        s = std::move(block);
        return;
      }
      default:
        return;
    }
  }

 private:
  int max_unroll_;
};

// ---------------------------------------------------------------------------
// Local-array scalarization
// ---------------------------------------------------------------------------

std::string ScalarName(const std::string& array, std::int64_t index) {
  // '$' cannot appear in user identifiers, so generated names never collide.
  return Format("%s$%lld", array.c_str(), static_cast<long long>(index));
}

class Scalarizer {
 public:
  int arrays = 0;

  void ProcessBlockList(std::vector<StmtPtr>& stmts) {
    for (auto& s : stmts) ProcessStmt(s);
  }

  void ProcessStmt(StmtPtr& s) {
    if (!s) return;
    switch (s->kind) {
      case StmtKind::kArrayDecl: {
        if (s->array_space != vgpu::Space::kLocal) return;
        auto n = EvalConstInt(*s->array_size);
        KSPEC_CHECK_MSG(n.has_value(), "array size should have been validated by sema");
        auto decl = std::make_unique<Stmt>();
        decl->kind = StmtKind::kDecl;
        decl->line = s->line;
        for (std::int64_t k = 0; k < *n; ++k) {
          VarDecl d;
          d.name = ScalarName(s->array_name, k);
          d.type = s->array_elem;
          d.init = s->array_elem.scalar == Scalar::kFloat || s->array_elem.scalar == Scalar::kDouble
                       ? MakeFloatLit(0.0, s->array_elem.scalar, s->line)
                       : MakeIntLit(0, s->array_elem.scalar, s->line);
          decl->decls.push_back(std::move(d));
        }
        sizes_[s->array_name] = *n;
        ++arrays;
        s = std::move(decl);
        return;
      }
      case StmtKind::kDecl:
        for (auto& d : s->decls) RewriteExpr(d.init);
        return;
      case StmtKind::kExpr:
        RewriteExpr(s->expr);
        return;
      case StmtKind::kIf:
        RewriteExpr(s->cond);
        ProcessStmt(s->then_branch);
        ProcessStmt(s->else_branch);
        return;
      case StmtKind::kWhile:
        RewriteExpr(s->cond);
        ProcessStmt(s->body);
        return;
      case StmtKind::kFor:
        ProcessStmt(s->init);
        RewriteExpr(s->cond);
        RewriteExpr(s->step);
        ProcessStmt(s->body);
        return;
      case StmtKind::kBlock:
        ProcessBlockList(s->stmts);
        return;
      default:
        return;
    }
  }

 private:
  void RewriteExpr(ExprPtr& e) {
    if (!e) return;
    if (e->kind == ExprKind::kIndex && e->a->kind == ExprKind::kVarRef &&
        sizes_.count(e->a->name)) {
      FoldInPlace(e->b);
      auto idx = EvalConstInt(*e->b);
      if (!idx) {
        throw CompileError(Format(
            "line %d: index into register array '%s' is not a compile-time constant; "
            "registers cannot be indirectly addressed — specialize the loop bounds "
            "(-D) so the surrounding loop unrolls",
            e->line, e->a->name.c_str()));
      }
      std::int64_t n = sizes_[e->a->name];
      if (*idx < 0 || *idx >= n) {
        throw CompileError(Format("line %d: register array '%s' index %lld out of bounds [0,%lld)",
                                  e->line, e->a->name.c_str(), static_cast<long long>(*idx),
                                  static_cast<long long>(n)));
      }
      auto var = std::make_unique<Expr>();
      var->kind = ExprKind::kVarRef;
      var->line = e->line;
      var->name = ScalarName(e->a->name, *idx);
      var->type = TypeRef::Value(e->type.scalar);
      e = std::move(var);
      return;
    }
    if (e->kind == ExprKind::kVarRef && sizes_.count(e->name)) {
      throw CompileError(Format("line %d: register array '%s' can only be used with constant "
                                "indices",
                                e->line, e->name.c_str()));
    }
    RewriteExpr(e->a);
    RewriteExpr(e->b);
    RewriteExpr(e->c);
    for (auto& arg : e->args) RewriteExpr(arg);
  }

  std::map<std::string, std::int64_t> sizes_;
};

}  // namespace

UnrollResult UnrollLoops(KernelDecl& kernel, int max_unroll) {
  FoldStmt(kernel.body);
  Unroller u(max_unroll);
  u.Process(kernel.body);
  return u.result;
}

int ScalarizeLocalArrays(KernelDecl& kernel) {
  Scalarizer s;
  s.ProcessStmt(kernel.body);
  return s.arrays;
}

}  // namespace kspec::kcc
