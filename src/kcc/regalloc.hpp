// Register accounting and static ILP estimation.
//
// MiniPTX registers are virtual, like PTX; "register allocation" here means
// measuring what a translator would need: the maximum number of 32-bit
// registers simultaneously live at any program point (64-bit values count
// twice, predicates are tracked in their own file, as on real hardware).
// This count feeds the occupancy calculator and is the number reported in the
// dissertation's Table 6.13-style results — specialization lowers it because
// folded parameters never occupy a register.
//
// The ILP estimate is instructions / critical-path-length per basic block;
// the interpreter weighs it by dynamic execution to drive the latency-hiding
// term of the cost model (register-blocked unrolled code has long independent
// chains and hides latency even at low occupancy, Section 2.3).
#pragma once

#include <vector>

#include "vgpu/isa.hpp"

namespace kspec::kcc {

struct AllocResult {
  int reg_count = 0;                 // peak live 32-bit registers per thread
  int pred_count = 0;                // peak live predicate registers
  std::vector<float> ilp_at_pc;      // per-pc block ILP estimate
};

AllocResult AllocateRegisters(const std::vector<vgpu::Instr>& code,
                              const std::vector<vgpu::Type>& vreg_types);

}  // namespace kspec::kcc
