// Kernel-C lexer. Operates on preprocessed source (see preprocess.hpp).
#pragma once

#include <string_view>
#include <vector>

#include "kcc/token.hpp"

namespace kspec::kcc {

// Tokenizes `source`; throws CompileError with line/column context on invalid
// input. The returned vector ends with a kEof token.
std::vector<Token> Lex(std::string_view source);

}  // namespace kspec::kcc
