#include "kcc/parser.hpp"

#include <optional>

#include "kcc/lexer.hpp"
#include "support/status.hpp"
#include "support/str.hpp"

namespace kspec::kcc {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  ModuleAst Run() {
    ModuleAst mod;
    while (Peek().kind != Tok::kEof) {
      if (IsIdent("__constant") || IsIdent("__constant__")) {
        Get();
        mod.constants.push_back(ConstantDeclRule());
      } else if (IsIdent("__texture")) {
        Get();
        if (!MatchIdent("float")) Fail("textures hold float texels (__texture float name;)");
        TextureDecl tex;
        tex.line = Peek().line;
        tex.name = ExpectIdent("texture name");
        Expect(Tok::kSemi, ";");
        mod.textures.push_back(std::move(tex));
      } else if (IsIdent("__kernel") || IsIdent("__global__")) {
        Get();
        mod.kernels.push_back(KernelDeclRule());
      } else {
        Fail("expected __kernel or __constant at top level");
      }
    }
    return mod;
  }

 private:
  [[noreturn]] void Fail(const std::string& msg) {
    const Token& t = Peek();
    throw CompileError(Format("%d:%d: %s (at '%s')", t.line, t.col, msg.c_str(),
                              t.kind == Tok::kIdent ? t.text.c_str() : TokName(t.kind)));
  }

  const Token& Peek(std::size_t k = 0) const {
    std::size_t i = pos_ + k;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Get() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

  bool IsIdent(std::string_view name, std::size_t k = 0) const {
    const Token& t = Peek(k);
    return t.kind == Tok::kIdent && t.text == name;
  }
  bool MatchIdent(std::string_view name) {
    if (IsIdent(name)) {
      Get();
      return true;
    }
    return false;
  }
  void Expect(Tok kind, const char* what) {
    if (Peek().kind != kind) Fail(Format("expected %s", what));
    Get();
  }
  std::string ExpectIdent(const char* what) {
    if (Peek().kind != Tok::kIdent) Fail(Format("expected %s", what));
    return Get().text;
  }

  // -------------------------------------------------------------- types ----
  bool PeekIsTypeKeyword(std::size_t k = 0) const {
    const Token& t = Peek(k);
    if (t.kind != Tok::kIdent) return false;
    return t.text == "int" || t.text == "unsigned" || t.text == "uint" ||
           t.text == "float" || t.text == "double" || t.text == "long" ||
           t.text == "bool" || t.text == "void" || t.text == "const" ||
           t.text == "size_t";
  }

  Scalar ScalarTypeRule() {
    if (MatchIdent("const")) {
      // const is accepted and ignored at type level (tracked per-decl).
    }
    if (MatchIdent("void")) return Scalar::kVoid;
    if (MatchIdent("bool")) return Scalar::kBool;
    if (MatchIdent("float")) return Scalar::kFloat;
    if (MatchIdent("double")) return Scalar::kDouble;
    if (MatchIdent("int")) return Scalar::kInt;
    if (MatchIdent("uint")) return Scalar::kUint;
    if (MatchIdent("size_t")) return Scalar::kUlong;
    if (MatchIdent("unsigned")) {
      if (MatchIdent("int")) return Scalar::kUint;
      if (MatchIdent("long")) {
        MatchIdent("long");
        MatchIdent("int");
        return Scalar::kUlong;
      }
      return Scalar::kUint;
    }
    if (MatchIdent("long")) {
      MatchIdent("long");
      MatchIdent("int");
      return Scalar::kLong;
    }
    Fail("expected a type name");
  }

  // ---------------------------------------------------------- top level ----
  ConstantDecl ConstantDeclRule() {
    ConstantDecl decl;
    decl.line = Peek().line;
    decl.elem = ScalarTypeRule();
    if (decl.elem == Scalar::kVoid) Fail("__constant element type cannot be void");
    decl.name = ExpectIdent("constant array name");
    Expect(Tok::kLBracket, "[");
    decl.size = ExprRule();
    Expect(Tok::kRBracket, "]");
    Expect(Tok::kSemi, ";");
    return decl;
  }

  KernelDecl KernelDeclRule() {
    KernelDecl k;
    k.line = Peek().line;
    Scalar ret = ScalarTypeRule();
    if (ret != Scalar::kVoid) Fail("kernels must return void");
    k.name = ExpectIdent("kernel name");
    Expect(Tok::kLParen, "(");
    if (Peek().kind != Tok::kRParen) {
      while (true) {
        k.params.push_back(ParamRule());
        if (!MatchTok(Tok::kComma)) break;
      }
    }
    Expect(Tok::kRParen, ")");
    if (Peek().kind != Tok::kLBrace) Fail("expected kernel body");
    k.body = BlockRule();
    return k;
  }

  bool MatchTok(Tok kind) {
    if (Peek().kind == kind) {
      Get();
      return true;
    }
    return false;
  }

  ParamDecl ParamRule() {
    ParamDecl p;
    MatchIdent("__global");  // optional address-space decoration
    Scalar s = ScalarTypeRule();
    if (MatchTok(Tok::kStar)) {
      MatchIdent("const");
      MatchIdent("__restrict__");
      p.type = TypeRef::Pointer(s, vgpu::Space::kGlobal);
    } else {
      if (s == Scalar::kVoid) Fail("parameter type cannot be void");
      p.type = TypeRef::Value(s);
    }
    p.name = ExpectIdent("parameter name");
    return p;
  }

  // ---------------------------------------------------------- statements ----
  StmtPtr BlockRule() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kBlock;
    s->line = Peek().line;
    Expect(Tok::kLBrace, "{");
    while (Peek().kind != Tok::kRBrace) {
      if (Peek().kind == Tok::kEof) Fail("unterminated block");
      s->stmts.push_back(StmtRule());
    }
    Get();
    return s;
  }

  StmtPtr StmtRule() {
    const Token& t = Peek();
    if (t.kind == Tok::kLBrace) return BlockRule();
    if (t.kind == Tok::kSemi) {
      Get();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kBlock;  // empty statement
      s->line = t.line;
      return s;
    }
    if (t.kind == Tok::kIdent) {
      if (t.text == "if") return IfRule();
      if (t.text == "for") return ForRule();
      if (t.text == "while") return WhileRule();
      if (t.text == "return") {
        Get();
        Expect(Tok::kSemi, "; after return");
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kReturn;
        s->line = t.line;
        return s;
      }
      if (t.text == "break" || t.text == "continue") {
        Fail("break/continue are not supported in Kernel-C (restructure the loop; "
             "the SIMT reconvergence model requires structured control flow)");
      }
      if (t.text == "__shared" || t.text == "__shared__") {
        Get();
        return ArrayDeclRule(vgpu::Space::kShared, /*dynamic=*/false);
      }
      if (t.text == "extern") {
        Get();
        if (!MatchIdent("__shared") && !MatchIdent("__shared__")) {
          Fail("expected __shared after extern (dynamic shared memory declaration)");
        }
        return ArrayDeclRule(vgpu::Space::kShared, /*dynamic=*/true);
      }
      if (t.text == "__syncthreads") {
        Get();
        Expect(Tok::kLParen, "(");
        Expect(Tok::kRParen, ")");
        Expect(Tok::kSemi, ";");
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kSync;
        s->line = t.line;
        return s;
      }
      if (PeekIsTypeKeyword()) return DeclStmtRule();
    }
    // Expression statement.
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kExpr;
    s->line = t.line;
    s->expr = ExprRule();
    Expect(Tok::kSemi, "; after expression");
    return s;
  }

  // `<type> name[N];` declares a local (register) array; `<type> name = e, ...;`
  // declares scalars.
  StmtPtr DeclStmtRule() {
    int line = Peek().line;
    bool is_const = IsIdent("const");
    Scalar s = ScalarTypeRule();
    if (s == Scalar::kVoid) Fail("cannot declare a void variable");
    bool is_pointer = MatchTok(Tok::kStar);

    // Local array?
    if (Peek().kind == Tok::kIdent && Peek(1).kind == Tok::kLBracket) {
      if (is_pointer) Fail("arrays of pointers are not supported");
      std::string name = Get().text;
      Get();  // [
      auto st = std::make_unique<Stmt>();
      st->kind = StmtKind::kArrayDecl;
      st->line = line;
      st->array_name = name;
      st->array_elem = TypeRef::Value(s);
      st->array_size = ExprRule();
      st->array_space = vgpu::Space::kLocal;
      Expect(Tok::kRBracket, "]");
      Expect(Tok::kSemi, ";");
      return st;
    }

    auto st = std::make_unique<Stmt>();
    st->kind = StmtKind::kDecl;
    st->line = line;
    while (true) {
      VarDecl d;
      d.type = is_pointer ? TypeRef::Pointer(s, vgpu::Space::kGlobal) : TypeRef::Value(s);
      d.is_const = is_const;
      d.name = ExpectIdent("variable name");
      if (MatchTok(Tok::kAssign)) d.init = AssignmentRule();
      st->decls.push_back(std::move(d));
      if (!MatchTok(Tok::kComma)) break;
    }
    Expect(Tok::kSemi, ";");
    return st;
  }

  StmtPtr ArrayDeclRule(vgpu::Space space, bool dynamic = false) {
    auto st = std::make_unique<Stmt>();
    st->kind = StmtKind::kArrayDecl;
    st->line = Peek().line;
    Scalar s = ScalarTypeRule();
    if (s == Scalar::kVoid) Fail("array element type cannot be void");
    st->array_elem = TypeRef::Value(s);
    st->array_name = ExpectIdent("array name");
    st->array_space = space;
    st->array_dynamic = dynamic;
    Expect(Tok::kLBracket, "[");
    if (dynamic) {
      if (Peek().kind != Tok::kRBracket) {
        Fail("extern __shared arrays take no size (it is supplied at launch)");
      }
    } else {
      st->array_size = ExprRule();
    }
    Expect(Tok::kRBracket, "]");
    Expect(Tok::kSemi, ";");
    return st;
  }

  StmtPtr IfRule() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kIf;
    s->line = Peek().line;
    Get();  // if
    Expect(Tok::kLParen, "(");
    s->cond = ExprRule();
    Expect(Tok::kRParen, ")");
    s->then_branch = StmtRule();
    if (MatchIdent("else")) s->else_branch = StmtRule();
    return s;
  }

  StmtPtr WhileRule() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kWhile;
    s->line = Peek().line;
    Get();  // while
    Expect(Tok::kLParen, "(");
    s->cond = ExprRule();
    Expect(Tok::kRParen, ")");
    s->body = StmtRule();
    return s;
  }

  StmtPtr ForRule() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kFor;
    s->line = Peek().line;
    Get();  // for
    Expect(Tok::kLParen, "(");
    if (!MatchTok(Tok::kSemi)) {
      if (PeekIsTypeKeyword()) {
        s->init = DeclStmtRule();  // consumes the ';'
      } else {
        auto e = std::make_unique<Stmt>();
        e->kind = StmtKind::kExpr;
        e->line = Peek().line;
        e->expr = ExprRule();
        s->init = std::move(e);
        Expect(Tok::kSemi, "; in for header");
      }
    }
    if (Peek().kind != Tok::kSemi) s->cond = ExprRule();
    Expect(Tok::kSemi, "; in for header");
    if (Peek().kind != Tok::kRParen) s->step = ExprRule();
    Expect(Tok::kRParen, ")");
    s->body = StmtRule();
    return s;
  }

  // -------------------------------------------------------- expressions ----
  ExprPtr ExprRule() { return AssignmentRule(); }

  ExprPtr AssignmentRule() {
    ExprPtr lhs = TernaryRule();
    Tok k = Peek().kind;
    std::optional<BinOp> op;
    switch (k) {
      case Tok::kAssign: op = std::nullopt; break;
      case Tok::kPlusEq: op = BinOp::kAdd; break;
      case Tok::kMinusEq: op = BinOp::kSub; break;
      case Tok::kStarEq: op = BinOp::kMul; break;
      case Tok::kSlashEq: op = BinOp::kDiv; break;
      case Tok::kPercentEq: op = BinOp::kRem; break;
      case Tok::kAmpEq: op = BinOp::kAnd; break;
      case Tok::kPipeEq: op = BinOp::kOr; break;
      case Tok::kCaretEq: op = BinOp::kXor; break;
      case Tok::kShlEq: op = BinOp::kShl; break;
      case Tok::kShrEq: op = BinOp::kShr; break;
      default:
        return lhs;
    }
    int line = Get().line;
    ExprPtr rhs = AssignmentRule();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kAssign;
    e->line = line;
    e->is_compound = op.has_value();
    if (op) e->assign_op = *op;
    e->a = std::move(lhs);
    e->b = std::move(rhs);
    return e;
  }

  ExprPtr TernaryRule() {
    ExprPtr cond = BinaryRule(0);
    if (!MatchTok(Tok::kQuestion)) return cond;
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kTernary;
    e->line = cond->line;
    e->a = std::move(cond);
    e->b = ExprRule();
    Expect(Tok::kColon, ": in ?:");
    e->c = TernaryRule();
    return e;
  }

  static int Precedence(Tok k) {
    switch (k) {
      case Tok::kStar: case Tok::kSlash: case Tok::kPercent: return 10;
      case Tok::kPlus: case Tok::kMinus: return 9;
      case Tok::kShl: case Tok::kShr: return 8;
      case Tok::kLess: case Tok::kLessEq: case Tok::kGreater: case Tok::kGreaterEq: return 7;
      case Tok::kEqEq: case Tok::kBangEq: return 6;
      case Tok::kAmp: return 5;
      case Tok::kCaret: return 4;
      case Tok::kPipe: return 3;
      case Tok::kAmpAmp: return 2;
      case Tok::kPipePipe: return 1;
      default: return -1;
    }
  }

  static BinOp TokToBinOp(Tok k) {
    switch (k) {
      case Tok::kStar: return BinOp::kMul;
      case Tok::kSlash: return BinOp::kDiv;
      case Tok::kPercent: return BinOp::kRem;
      case Tok::kPlus: return BinOp::kAdd;
      case Tok::kMinus: return BinOp::kSub;
      case Tok::kShl: return BinOp::kShl;
      case Tok::kShr: return BinOp::kShr;
      case Tok::kLess: return BinOp::kLt;
      case Tok::kLessEq: return BinOp::kLe;
      case Tok::kGreater: return BinOp::kGt;
      case Tok::kGreaterEq: return BinOp::kGe;
      case Tok::kEqEq: return BinOp::kEq;
      case Tok::kBangEq: return BinOp::kNe;
      case Tok::kAmp: return BinOp::kAnd;
      case Tok::kCaret: return BinOp::kXor;
      case Tok::kPipe: return BinOp::kOr;
      case Tok::kAmpAmp: return BinOp::kLogAnd;
      case Tok::kPipePipe: return BinOp::kLogOr;
      default: throw InternalError("not a binary operator token");
    }
  }

  ExprPtr BinaryRule(int min_prec) {
    ExprPtr lhs = UnaryRule();
    while (true) {
      int prec = Precedence(Peek().kind);
      if (prec < 0 || prec < min_prec) return lhs;
      Tok k = Get().kind;
      ExprPtr rhs = BinaryRule(prec + 1);
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->line = lhs->line;
      e->bin_op = TokToBinOp(k);
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
  }

  ExprPtr UnaryRule() {
    const Token& t = Peek();
    switch (t.kind) {
      case Tok::kMinus:
      case Tok::kBang:
      case Tok::kTilde:
      case Tok::kPlus: {
        Get();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kUnary;
        e->line = t.line;
        e->un_op = t.kind == Tok::kMinus  ? UnOp::kNeg
                   : t.kind == Tok::kBang ? UnOp::kNot
                   : t.kind == Tok::kTilde ? UnOp::kBitNot
                                           : UnOp::kPlus;
        e->a = UnaryRule();
        return e;
      }
      case Tok::kStar: {
        // Pointer dereference: *p == p[0].
        Get();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIndex;
        e->line = t.line;
        e->a = UnaryRule();
        e->b = MakeIntLit(0, Scalar::kInt, t.line);
        return e;
      }
      case Tok::kPlusPlus:
      case Tok::kMinusMinus: {
        Get();
        ExprPtr target = UnaryRule();
        return MakeIncDec(std::move(target), t.kind == Tok::kPlusPlus, t.line);
      }
      case Tok::kLParen:
        // Cast if a type keyword follows.
        if (PeekIsTypeKeyword(1)) {
          Get();
          Scalar s = ScalarTypeRule();
          bool pointer = MatchTok(Tok::kStar);
          Expect(Tok::kRParen, ") after cast type");
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kCast;
          e->line = t.line;
          e->type = pointer ? TypeRef::Pointer(s, vgpu::Space::kGlobal) : TypeRef::Value(s);
          e->a = UnaryRule();
          return e;
        }
        break;
      default:
        break;
    }
    return PostfixRule();
  }

  ExprPtr MakeIncDec(ExprPtr target, bool inc, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kAssign;
    e->line = line;
    e->is_compound = true;
    e->assign_op = inc ? BinOp::kAdd : BinOp::kSub;
    e->a = std::move(target);
    e->b = MakeIntLit(1, Scalar::kInt, line);
    return e;
  }

  ExprPtr PostfixRule() {
    ExprPtr e = PrimaryRule();
    while (true) {
      const Token& t = Peek();
      if (t.kind == Tok::kLBracket) {
        Get();
        auto idx = std::make_unique<Expr>();
        idx->kind = ExprKind::kIndex;
        idx->line = t.line;
        idx->a = std::move(e);
        idx->b = ExprRule();
        Expect(Tok::kRBracket, "]");
        e = std::move(idx);
      } else if (t.kind == Tok::kPlusPlus || t.kind == Tok::kMinusMinus) {
        // Post-increment: supported as a statement-level operation (its value
        // is the updated variable, i.e. pre-increment semantics; sema warns
        // when used as a subexpression).
        Get();
        e = MakeIncDec(std::move(e), t.kind == Tok::kPlusPlus, t.line);
      } else {
        return e;
      }
    }
  }

  ExprPtr PrimaryRule() {
    const Token& t = Peek();
    if (t.kind == Tok::kIntLit) {
      Get();
      Scalar s = t.is_wide ? (t.is_unsigned ? Scalar::kUlong : Scalar::kLong)
                           : (t.is_unsigned ? Scalar::kUint : Scalar::kInt);
      // Large literals widen automatically.
      if (!t.is_wide && t.int_value > 0xffffffffull) {
        s = t.is_unsigned ? Scalar::kUlong : Scalar::kLong;
      }
      auto e = MakeIntLit(static_cast<std::int64_t>(t.int_value), s, t.line);
      return e;
    }
    if (t.kind == Tok::kFloatLit) {
      Get();
      return MakeFloatLit(t.float_value, t.is_f32 ? Scalar::kFloat : Scalar::kDouble, t.line);
    }
    if (t.kind == Tok::kLParen) {
      Get();
      ExprPtr e = ExprRule();
      Expect(Tok::kRParen, ")");
      return e;
    }
    if (t.kind == Tok::kIdent) {
      // Thread geometry builtins.
      static const struct {
        const char* base;
        vgpu::SpecialReg x, y, z;
      } kGeom[] = {
          {"threadIdx", vgpu::SpecialReg::kTidX, vgpu::SpecialReg::kTidY, vgpu::SpecialReg::kTidZ},
          {"blockIdx", vgpu::SpecialReg::kCtaidX, vgpu::SpecialReg::kCtaidY, vgpu::SpecialReg::kCtaidZ},
          {"blockDim", vgpu::SpecialReg::kNtidX, vgpu::SpecialReg::kNtidY, vgpu::SpecialReg::kNtidZ},
          {"gridDim", vgpu::SpecialReg::kNctaidX, vgpu::SpecialReg::kNctaidY, vgpu::SpecialReg::kNctaidZ},
      };
      for (const auto& g : kGeom) {
        if (t.text == g.base) {
          Get();
          Expect(Tok::kDot, ". after thread geometry builtin");
          std::string member = ExpectIdent("x, y, or z");
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kSreg;
          e->line = t.line;
          if (member == "x") e->sreg = g.x;
          else if (member == "y") e->sreg = g.y;
          else if (member == "z") e->sreg = g.z;
          else Fail("expected .x, .y, or .z");
          return e;
        }
      }
      // Call?
      if (Peek(1).kind == Tok::kLParen) {
        Get();
        Get();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCall;
        e->line = t.line;
        e->name = t.text;
        if (Peek().kind != Tok::kRParen) {
          while (true) {
            e->args.push_back(AssignmentRule());
            if (!MatchTok(Tok::kComma)) break;
          }
        }
        Expect(Tok::kRParen, ") after call arguments");
        return e;
      }
      Get();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kVarRef;
      e->line = t.line;
      e->name = t.text;
      return e;
    }
    Fail("expected an expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

ModuleAst Parse(const std::string& source) { return Parser(Lex(source)).Run(); }

}  // namespace kspec::kcc
