// PredictiveSearch: the KLARAPTOR idea (fit a cheap cost model from a few
// samples, then only verify its best predictions) adapted to the
// deterministic simulator, where it can be validated exactly against
// grid-search ground truth.
//
// Pipeline:
//   1. pre-pass   — statically infeasible configurations are pruned before
//                   anything compiles or launches (pruned_static);
//   2. seed       — a stratified sample of the surviving space is measured;
//   3. fit        — least squares of log(cost) on {1, x_d, x_d^2} per
//                   parameter, x_d = log2(value). Quadratic-in-log captures
//                   the U-shaped occupancy/ILP tradeoff curves GPU launch
//                   parameters produce (KLARAPTOR fits rational programs;
//                   on piecewise-smooth simulator surfaces a low-order
//                   polynomial ranks just as well and needs fewer samples);
//   4. rank+verify— every unmeasured candidate is scored by the model and
//                   only the top-k predictions are measured for real;
//   5. fallback   — a poor fit (R^2 below threshold, or too few feasible
//                   seeds to determine the coefficients) falls back to
//                   multi-start CoordinateDescent over the same memoized
//                   evaluations.
#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "support/status.hpp"
#include "tune/search_internal.hpp"
#include "tune/tuner.hpp"

namespace kspec::tune {

namespace {

using internal::Evaluator;

double Feature(std::int64_t v) {
  return v > 0 ? std::log2(static_cast<double>(v)) : static_cast<double>(v);
}

// Solves the p x p system A w = b by Gaussian elimination with partial
// pivoting. Returns false when (numerically) singular.
bool SolveLinear(std::vector<std::vector<double>> a, std::vector<double> b,
                 std::vector<double>* w) {
  const std::size_t p = b.size();
  for (std::size_t col = 0; col < p; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < p; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < p; ++r) {
      double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < p; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  w->assign(p, 0);
  for (std::size_t col = p; col-- > 0;) {
    double acc = b[col];
    for (std::size_t c = col + 1; c < p; ++c) acc -= a[col][c] * (*w)[c];
    (*w)[col] = acc / a[col][col];
  }
  return true;
}

// The fitted per-parameter quadratic cost model.
struct CostModel {
  // Dimensions that actually vary across the seed sample; constant ones
  // carry no information and would make the normal equations singular.
  std::vector<std::string> dims;
  std::vector<double> coeffs;  // 1 + 2 * dims.size()
  double r2 = 0;

  std::vector<double> Row(const Config& cfg) const {
    std::vector<double> row;
    row.reserve(1 + 2 * dims.size());
    row.push_back(1.0);
    for (const std::string& d : dims) {
      double x = Feature(cfg.at(d));
      row.push_back(x);
      row.push_back(x * x);
    }
    return row;
  }

  double Predict(const Config& cfg) const {
    std::vector<double> row = Row(cfg);
    double y = 0;
    for (std::size_t i = 0; i < row.size(); ++i) y += coeffs[i] * row[i];
    return y;  // log-cost; monotone in cost, which is all ranking needs
  }
};

// Fits log(ms) over the measured samples. Returns false when the sample
// cannot determine the model (too few points or singular system).
bool FitModel(const std::vector<ParamRange>& space, const std::vector<Sample>& samples,
              CostModel* model) {
  model->dims.clear();
  for (const auto& r : space) {
    std::set<std::int64_t> seen;
    for (const Sample& s : samples) seen.insert(s.config.at(r.name));
    if (seen.size() >= 2) model->dims.push_back(r.name);
  }
  const std::size_t p = 1 + 2 * model->dims.size();
  // Require residual degrees of freedom: with exactly p samples the model
  // interpolates anything (R^2 = 1 on pure noise) and the gate below is
  // meaningless.
  if (samples.size() < p + 2) return false;

  // Normal equations: (X^T X) w = X^T y.
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0));
  std::vector<double> xty(p, 0);
  for (const Sample& s : samples) {
    std::vector<double> row = model->Row(s.config);
    double y = std::log(std::max(s.millis, 1e-12));
    for (std::size_t i = 0; i < p; ++i) {
      xty[i] += row[i] * y;
      for (std::size_t j = 0; j < p; ++j) xtx[i][j] += row[i] * row[j];
    }
  }
  if (!SolveLinear(std::move(xtx), std::move(xty), &model->coeffs)) return false;

  double mean = 0;
  for (const Sample& s : samples) mean += std::log(std::max(s.millis, 1e-12));
  mean /= static_cast<double>(samples.size());
  double ss_res = 0, ss_tot = 0;
  for (const Sample& s : samples) {
    double y = std::log(std::max(s.millis, 1e-12));
    double e = y - model->Predict(s.config);
    ss_res += e * e;
    ss_tot += (y - mean) * (y - mean);
  }
  const double raw = ss_tot < 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  // Degrees-of-freedom-adjusted R^2: raw R^2 is inflated when the sample is
  // barely larger than the coefficient count (7 coefficients fit 10 random
  // points to ~0.7), which would wave garbage models through the quality
  // gate. The adjustment can go negative; the gate only cares about "high".
  const double m = static_cast<double>(samples.size());
  model->r2 = 1.0 - (1.0 - raw) * (m - 1.0) / (m - static_cast<double>(p) - 1.0);
  return true;
}

}  // namespace

TuneResult PredictiveSearch(const std::vector<ParamRange>& space, const EvalFn& eval,
                            PredictiveOptions opts) {
  internal::CheckSpace(space);
  KSPEC_CHECK_MSG(opts.seed_samples > 0 && opts.verify_top_k >= 0,
                  "invalid predictive-search options");

  TuneResult result;

  // Static pre-pass over the whole space: everything it rejects is out of
  // consideration before a single compile or launch.
  std::vector<Config> candidates;
  std::set<Config> pruned;
  for (Config& cfg : internal::EnumerateSpace(space)) {
    if (opts.prune && opts.prune(cfg)) {
      ++result.pruned_static;
      pruned.insert(std::move(cfg));
    } else {
      candidates.push_back(std::move(cfg));
    }
  }

  // The evaluator still shields against pruned configurations (the fallback
  // descent probes the raw space) without re-counting them.
  PruneFn shield;
  if (!pruned.empty()) shield = [&pruned](const Config& c) { return pruned.count(c) != 0; };
  Evaluator ev(eval, shield, &result, /*count_pruned=*/false);
  auto measure = [&](const Config& cfg) {
    double ms = ev(cfg);
    internal::Offer(&result, cfg, ms);
    return ms;
  };

  if (candidates.empty()) {
    result.best_millis = std::numeric_limits<double>::infinity();
    return result;
  }

  const std::size_t budget =
      opts.max_evaluations > 0
          ? static_cast<std::size_t>(opts.max_evaluations)
          : static_cast<std::size_t>(opts.seed_samples + opts.verify_top_k);

  // Degenerate case: a space no larger than the budget is measured
  // exhaustively — the result is exact, not predicted.
  if (candidates.size() <= budget) {
    for (const Config& cfg : candidates) measure(cfg);
    result.fit_r2 = 1.0;
    if (!result.ok()) result.best_millis = std::numeric_limits<double>::infinity();
    return result;
  }

  // Seed sample: a golden-section stride, made coprime to n. A naive evenly
  // spaced stride aliases with the enumeration period (the first dimension
  // varies fastest), which can pin one parameter to a near-constant value
  // across the whole sample — the coprime stride walks every dimension's
  // period out of phase instead, so each axis is exercised. Extended with a
  // linear scan if dynamic infeasibility eats into the sample.
  const std::size_t n = candidates.size();
  const std::size_t want_seeds =
      std::min({static_cast<std::size_t>(opts.seed_samples), n, budget});
  std::size_t step = std::max<std::size_t>(1, static_cast<std::size_t>(0.618 * n));
  while (std::gcd(step, n) != 1) ++step;
  std::set<std::size_t> tried;
  for (std::size_t j = 0; j < want_seeds; ++j) {
    std::size_t idx = (j * step) % n;
    if (tried.insert(idx).second) measure(candidates[idx]);
  }
  for (std::size_t idx = 0; idx < n && result.evaluated < want_seeds; ++idx) {
    if (tried.insert(idx).second) measure(candidates[idx]);
  }

  // Fit; rank; verify the top-k predictions with real measurements.
  CostModel model;
  const bool fitted = FitModel(space, result.history, &model);
  result.fit_r2 = fitted ? model.r2 : 0.0;
  if (fitted && model.r2 >= opts.min_fit_r2) {
    std::vector<std::size_t> ranked;
    ranked.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!ev.Measured(candidates[i]) && !tried.count(i)) ranked.push_back(i);
    }
    std::vector<double> pred(n, 0);
    for (std::size_t i : ranked) pred[i] = model.Predict(candidates[i]);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [&](std::size_t a, std::size_t b) { return pred[a] < pred[b]; });

    // Dynamically infeasible predictions cost no budget but are capped so a
    // wrong model cannot trigger a compile storm.
    std::size_t attempts = 0;
    const std::size_t max_attempts =
        std::max<std::size_t>(2 * static_cast<std::size_t>(opts.verify_top_k), 8);
    std::size_t verified = 0;
    for (std::size_t i : ranked) {
      if (verified >= static_cast<std::size_t>(opts.verify_top_k)) break;
      if (result.evaluated >= budget || attempts >= max_attempts) break;
      ++attempts;
      if (std::isfinite(measure(candidates[i]))) ++verified;
    }
  } else {
    // The model cannot be trusted: descend instead, reusing every
    // measurement already taken. An explicit evaluation budget still binds;
    // the implicit seed+top-k budget does not (the fallback is the escape
    // hatch, not a prediction).
    result.used_fallback = true;
    internal::CoordinateDescentInto(space, ev, &result, opts.fallback_max_rounds,
                                    opts.max_evaluations > 0 ? budget : 0);
  }

  if (!result.ok()) result.best_millis = std::numeric_limits<double>::infinity();
  return result;
}

}  // namespace kspec::tune
