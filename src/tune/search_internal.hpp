// Internals shared by the search strategies (tuner.cpp, predictive.cpp).
// Not part of the public tune API.
#pragma once

#include <map>
#include <vector>

#include "tune/tuner.hpp"

namespace kspec::tune::internal {

// Memoizing evaluator with unified accounting: each unique configuration is
// pruned / measured / skipped at most once per search, no matter how many
// times a strategy revisits it (multi-start descent, seed-then-verify).
// Infeasible points — statically pruned or dynamically rejected — evaluate
// to +inf so strategies can compare costs uniformly.
class Evaluator {
 public:
  // `count_pruned` false lets a strategy that already tallied the pre-pass
  // over the whole space (PredictiveSearch) still shield itself with the
  // prune without double-counting pruned_static.
  Evaluator(const EvalFn& eval, const PruneFn& prune, TuneResult* result,
            bool count_pruned = true)
      : eval_(eval), prune_(prune), result_(result), count_pruned_(count_pruned) {}

  double operator()(const Config& cfg);

  // True if cfg was already measured (finite) by a previous call.
  bool Measured(const Config& cfg) const;

  std::size_t measured_count() const { return result_->evaluated; }

 private:
  const EvalFn& eval_;
  const PruneFn& prune_;
  TuneResult* result_;
  bool count_pruned_ = true;
  std::map<Config, double> memo_;
};

// Validates the space (throws on empty) — shared precondition of every
// strategy.
void CheckSpace(const std::vector<ParamRange>& space);

// Enumerates the full cross product in odometer order (first range varies
// fastest).
std::vector<Config> EnumerateSpace(const std::vector<ParamRange>& space);

// The multi-start coordinate-descent core, folding measurements into
// `ev`'s result. Updates result->best/best_millis with anything better it
// finds. `max_evaluations` (0 = unlimited) stops the descent once the
// evaluator has measured that many configurations in total.
void CoordinateDescentInto(const std::vector<ParamRange>& space, Evaluator& ev,
                           TuneResult* result, int max_rounds,
                           std::size_t max_evaluations = 0);

// Folds a candidate into result->best and marks the result ok.
void Offer(TuneResult* result, const Config& cfg, double ms);

}  // namespace kspec::tune::internal
