#include "tune/prepass.hpp"

#include <algorithm>

namespace kspec::tune {

bool AdmitsLaunch(const vgpu::DeviceProfile& dev, const ResourceEstimate& r) {
  if (r.threads == 0 || r.threads > dev.max_threads_per_block) return false;
  if (r.smem_per_block > dev.shared_mem_per_sm) return false;
  // Registers beyond the device limit spill (the kernel still launches
  // with the clamped count) — mirror interp.cpp's admission exactly.
  const unsigned regs = std::min(std::max(r.regs_per_thread, 1u), dev.max_regs_per_thread);
  return vgpu::ComputeOccupancy(dev, vgpu::Dim3(r.threads), regs, r.smem_per_block)
             .blocks_per_sm > 0;
}

PruneFn OccupancyPrune(const vgpu::DeviceProfile& dev, ResourceFn resources) {
  return [dev, resources = std::move(resources)](const Config& cfg) -> bool {
    std::optional<ResourceEstimate> r = resources(cfg);
    if (!r) return true;  // structurally infeasible
    return !AdmitsLaunch(dev, *r);
  };
}

}  // namespace kspec::tune
