// Persistent tier of the TuningCache.
//
// Artifact layout mirrors the .kmod envelope (src/kcc/serialize.cpp): magic,
// format version, FNV-1a content checksum, payload size, then the entry map.
// Any malformed file — truncated, corrupt, version-bumped — deserializes to
// an empty cache with a warning rather than an error: tuned configurations
// are always recomputable, so the cache must never be able to wedge a run.
// Writes go through WriteFileAtomic (temp file + rename) after re-merging
// the on-disk entries, so concurrent processes sharing one path never see a
// torn file and a late writer does not drop an earlier writer's entries.
#include <cstring>
#include <utility>

#include "support/log.hpp"
#include "support/serialize.hpp"
#include "tune/tuner.hpp"

namespace kspec::tune {

namespace {

constexpr char kMagic[8] = {'K', 'S', 'P', 'C', 'T', 'U', 'N', '1'};
constexpr std::uint32_t kTuneFormatVersion = 1;

std::vector<std::uint8_t> SerializeEntries(const std::map<std::string, Config>& entries) {
  ByteWriter payload;
  payload.U32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [key, config] : entries) {
    payload.Str(key);
    payload.U32(static_cast<std::uint32_t>(config.size()));
    for (const auto& [name, value] : config) {
      payload.Str(name);
      payload.I64(value);
    }
  }
  ByteWriter out;
  out.Raw(kMagic, sizeof(kMagic));
  out.U32(kTuneFormatVersion);
  out.U64(Fnv1aBytes(payload.bytes().data(), payload.size()));
  out.U64(payload.size());
  out.Raw(payload.bytes().data(), payload.size());
  return out.Take();
}

// Throws SerializeError on any malformation; callers downgrade to "empty".
std::map<std::string, Config> DeserializeEntries(std::span<const std::uint8_t> bytes) {
  ByteReader header(bytes);
  char magic[8];
  if (header.remaining() < sizeof(magic)) throw SerializeError("artifact shorter than header");
  for (char& c : magic) c = static_cast<char>(header.U8());
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw SerializeError("bad magic: not a tuning-cache artifact");
  }
  std::uint32_t version = header.U32();
  if (version != kTuneFormatVersion) {
    throw SerializeError("format version " + std::to_string(version) + " != expected " +
                         std::to_string(kTuneFormatVersion));
  }
  std::uint64_t checksum = header.U64();
  std::uint64_t payload_size = header.U64();
  if (payload_size != header.remaining()) {
    throw SerializeError("payload size mismatch");
  }
  std::span<const std::uint8_t> payload = header.Rest();
  if (Fnv1aBytes(payload.data(), payload.size()) != checksum) {
    throw SerializeError("content checksum mismatch (corrupt artifact)");
  }

  ByteReader r(payload);
  std::map<std::string, Config> entries;
  const std::uint32_t n = r.U32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.Str();
    Config config;
    const std::uint32_t params = r.U32();
    for (std::uint32_t j = 0; j < params; ++j) {
      std::string name = r.Str();
      config[std::move(name)] = r.I64();
    }
    entries[std::move(key)] = std::move(config);
  }
  if (!r.AtEnd()) throw SerializeError("trailing bytes after entries");
  return entries;
}

// Best-effort read of `path` into an entry map; empty on any failure.
std::map<std::string, Config> ReadEntries(const std::string& path, bool warn) {
  std::vector<std::uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) return {};
  try {
    return DeserializeEntries(bytes);
  } catch (const SerializeError& e) {
    if (warn) {
      KSPEC_LOG_WARN << "tuning cache " << path << ": " << e.what()
                     << " — starting empty (entries will be re-tuned)";
    }
    return {};
  }
}

}  // namespace

// One in-flight LookupOrCompute per key: the first thread runs the search
// inside the once_flag, everyone else blocks on the same flag and shares the
// outcome (mirroring TieredLoader's per-key blocking latch).
struct TuningCache::ComputeFlight {
  std::once_flag once;
  Config config;
  std::exception_ptr error;
};

TuningCache::TuningCache(std::string path) : path_(std::move(path)) { LoadFromDisk(); }

void TuningCache::LoadFromDisk() {
  std::map<std::string, Config> loaded = ReadEntries(path_, /*warn=*/true);
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(loaded);
}

std::string TuningCache::MakeKey(const std::string& kernel, const std::string& device,
                                 const std::string& problem_signature) {
  return kernel + "|" + device + "|" + problem_signature;
}

std::optional<Config> TuningCache::Lookup(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void TuningCache::Store(const std::string& key, Config config) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[key] = std::move(config);
  }
  if (!path_.empty()) Flush();
}

std::size_t TuningCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Config TuningCache::LookupOrCompute(const std::string& key,
                                    const std::function<Config()>& compute) {
  std::shared_ptr<ComputeFlight> flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) return it->second;
    auto [fit, inserted] = flights_.try_emplace(key);
    if (inserted) fit->second = std::make_shared<ComputeFlight>();
    flight = fit->second;
  }
  // The search runs outside mu_ (it launches kernels, possibly for seconds);
  // racers on the same key wait here instead of searching again.
  std::call_once(flight->once, [&] {
    try {
      flight->config = compute();
    } catch (...) {
      flight->error = std::current_exception();
    }
  });
  {
    std::lock_guard<std::mutex> lock(mu_);
    flights_.erase(key);
  }
  if (flight->error) std::rethrow_exception(flight->error);
  Store(key, flight->config);
  return flight->config;
}

bool TuningCache::Flush() const {
  if (path_.empty()) return true;
  // Serialize whole read-merge-write cycles against other in-process
  // flushers: two interleaved cycles could each re-read the file before the
  // other wrote, and the later rename would drop the earlier writer's entry.
  std::lock_guard<std::mutex> io(flush_mu_);
  std::map<std::string, Config> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = entries_;
  }
  // Re-merge what other processes wrote meanwhile; our entries win ties.
  // File I/O happens outside mu_ so a slow disk never blocks Lookup/Store.
  std::map<std::string, Config> merged = ReadEntries(path_, /*warn=*/false);
  for (const auto& [key, config] : snapshot) merged[key] = config;
  std::vector<std::uint8_t> bytes = SerializeEntries(merged);
  if (!WriteFileAtomic(path_, bytes)) {
    KSPEC_LOG_WARN << "tuning cache: cannot write " << path_;
    return false;
  }
  return true;
}

}  // namespace kspec::tune
