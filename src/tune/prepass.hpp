// Static occupancy/feasibility pre-pass (the Lim et al. idea: prune launch
// configurations from resource analysis before any launch).
//
// The simulator admits a launch exactly when the block fits the device, the
// shared-memory request fits an SM, and occupancy is non-zero after the
// register count is clamped to the device's per-thread maximum (spilling).
// OccupancyPrune mirrors that admission decision over a *static resource
// estimate* — typically MiniPTX register counts read from a handful of
// axis-aligned reference compiles (registers vary with one parameter,
// shared memory with another) — so an entire tuning space can be screened
// with no per-candidate compile and no launch at all.
#pragma once

#include <functional>
#include <optional>

#include "tune/tuner.hpp"
#include "vgpu/device.hpp"

namespace kspec::tune {

// What one configuration would ask the device for at launch.
struct ResourceEstimate {
  unsigned threads = 0;          // block size (threads per block)
  unsigned regs_per_thread = 0;  // MiniPTX-derived register estimate
  unsigned smem_per_block = 0;   // static + dynamic shared bytes
};

// Returns the resources `cfg` would request, or nullopt when the
// configuration is structurally infeasible for non-resource reasons
// (uncoverable mask, degenerate tiling, ...). Must not launch anything.
using ResourceFn = std::function<std::optional<ResourceEstimate>(const Config&)>;

// Replays the simulator's launch admission against one static estimate:
// block-size limit, shared-memory limit, then zero occupancy with the
// register count clamped the way the interpreter clamps it. Exposed for
// multi-stage pipelines that must screen several kernels per configuration.
bool AdmitsLaunch(const vgpu::DeviceProfile& dev, const ResourceEstimate& r);

// Builds a PruneFn from AdmitsLaunch over `resources`. A config is pruned
// only when the estimate says the launch would be *rejected* — estimates
// for launchable configs merely cost nothing.
PruneFn OccupancyPrune(const vgpu::DeviceProfile& dev, ResourceFn resources);

}  // namespace kspec::tune
