// Implementation-parameter autotuning.
//
// Chapter 3 of the dissertation positions kernel specialization as
// complementary to autotuning: "by using highly parameterized CUDA kernels
// that are specialized quickly at run time, autotuning tools can be used to
// characterize the performance of a given implementation so that effective
// parameters can be selected quickly and used to compile a specialized
// kernel." This module is that companion tool: generic search over named
// integer parameter ranges with a pluggable evaluation function (typically:
// specialize, launch on the simulator, return simulated milliseconds), plus a
// result cache keyed by problem signature so a tuned configuration is reused
// across pipeline runs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace kspec::tune {

struct ParamRange {
  std::string name;
  std::vector<std::int64_t> values;
};

using Config = std::map<std::string, std::int64_t>;

struct Sample {
  Config config;
  double millis = 0;
};

struct TuneResult {
  Config best;
  double best_millis = 0;
  std::size_t evaluated = 0;  // configurations actually measured
  std::size_t skipped = 0;    // configurations rejected by the evaluator
  std::vector<Sample> history;
};

// Evaluation callback: returns the cost (simulated ms) of a configuration,
// or throws / returns a non-finite value to mark it infeasible (occupancy
// limits, uncoverable masks, ...).
using EvalFn = std::function<double(const Config&)>;

// Exhaustive search over the cross product of all ranges.
TuneResult GridSearch(const std::vector<ParamRange>& space, const EvalFn& eval);

// Greedy coordinate descent: start from each range's first feasible value,
// then repeatedly sweep one parameter at a time until no sweep improves.
// Evaluates far fewer points than the grid on separable-ish cost surfaces.
TuneResult CoordinateDescent(const std::vector<ParamRange>& space, const EvalFn& eval,
                             int max_rounds = 4);

// Remembers tuned configurations per problem signature (e.g. a string built
// from the problem parameters plus the device name), so repeated problems
// skip the search entirely — mirroring the compiled-binary cache one level
// up.
class TuningCache {
 public:
  std::optional<Config> Lookup(const std::string& key) const;
  void Store(const std::string& key, Config config);
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Config> entries_;
};

}  // namespace kspec::tune
