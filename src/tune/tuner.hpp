// Implementation-parameter autotuning.
//
// Chapter 3 of the dissertation positions kernel specialization as
// complementary to autotuning: "by using highly parameterized CUDA kernels
// that are specialized quickly at run time, autotuning tools can be used to
// characterize the performance of a given implementation so that effective
// parameters can be selected quickly and used to compile a specialized
// kernel." This module is that companion tool, in three tiers:
//
//   1. A *static pre-pass* (PruneFn, typically built by prepass.hpp's
//      OccupancyPrune): configurations that provably cannot launch —
//      coverage arithmetic, device block limits, zero occupancy from
//      MiniPTX register counts — are pruned without compiling or launching
//      them, and counted in TuneResult::pruned_static.
//   2. *Search* over named integer parameter ranges with a pluggable
//      evaluation function (typically: specialize, launch on the simulator,
//      return simulated milliseconds): exhaustive GridSearch, multi-start
//      CoordinateDescent, and the model-guided PredictiveSearch that fits a
//      low-order cost model from a small seed sample (KLARAPTOR-style) and
//      verifies only the top-ranked predictions with real measurements.
//   3. A *persistent TuningCache* keyed by (kernel, device, problem
//      signature), serialized through the same checksummed atomic-file
//      machinery as the .kmod specialization cache, so a second process —
//      or a fleet — skips the search entirely.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace kspec::tune {

struct ParamRange {
  std::string name;
  std::vector<std::int64_t> values;
};

using Config = std::map<std::string, std::int64_t>;

struct Sample {
  Config config;
  double millis = 0;
};

enum class TuneStatus {
  kOk,                // best holds a measured, feasible configuration
  kNoFeasibleConfig,  // every configuration was pruned or infeasible
};

struct TuneResult {
  Config best;
  double best_millis = 0;
  std::size_t evaluated = 0;      // configurations actually measured
  std::size_t skipped = 0;        // configurations rejected by the evaluator
  std::size_t pruned_static = 0;  // configurations rejected by the pre-pass
  TuneStatus status = TuneStatus::kNoFeasibleConfig;
  std::vector<Sample> history;

  // PredictiveSearch provenance (untouched by the other searches).
  bool used_fallback = false;  // model fit was poor; descended instead
  bool cache_hit = false;      // answered from a TuningCache, zero evaluations
  double fit_r2 = 0;           // dof-adjusted R^2 of the cost model (can be < 0)

  // False when no feasible configuration exists: `best` is EMPTY and
  // `best_millis` meaningless — callers must check before indexing `best`.
  bool ok() const { return status == TuneStatus::kOk; }
};

// Evaluation callback: returns the cost (simulated ms) of a configuration,
// or throws / returns a non-finite value to mark it infeasible (occupancy
// limits, uncoverable masks, ...).
using EvalFn = std::function<double(const Config&)>;

// Static feasibility pre-pass: returns true when the configuration is known
// infeasible WITHOUT compiling or launching it. Pruned configurations are
// never passed to the evaluator and are tallied in pruned_static.
using PruneFn = std::function<bool(const Config&)>;

// Exhaustive search over the cross product of all ranges.
TuneResult GridSearch(const std::vector<ParamRange>& space, const EvalFn& eval,
                      const PruneFn& prune = {});

// Greedy coordinate descent: start from each range's first feasible value,
// then repeatedly sweep one parameter at a time until no sweep improves.
// Evaluates far fewer points than the grid on separable-ish cost surfaces.
TuneResult CoordinateDescent(const std::vector<ParamRange>& space, const EvalFn& eval,
                             int max_rounds = 4, const PruneFn& prune = {});

struct PredictiveOptions {
  PruneFn prune;           // static pre-pass applied before anything runs
  int seed_samples = 12;   // configurations measured to fit the cost model
                           // (3 tuned dims = 7 coefficients; 12 leaves the
                           // adjusted-R^2 gate real dof to judge the fit)
  int verify_top_k = 5;    // model-ranked candidates confirmed with real evals
  int max_evaluations = 0; // hard budget on measured evals; 0 = seeds + top_k
  double min_fit_r2 = 0.5; // adjusted R^2 below this = model distrusted entirely
  int fallback_max_rounds = 4;  // descent budget when falling back
};

// Model-guided search (the KLARAPTOR idea adapted to the deterministic
// simulator): measure a small stratified seed sample, fit a low-order
// per-parameter cost model (quadratic in log2 of each parameter, least
// squares on log cost), rank every unmeasured candidate by predicted cost,
// and verify only the top-k predictions with real evaluations. When the fit
// is poor (fit_r2 < min_fit_r2) or the seed sample cannot support the model,
// falls back to CoordinateDescent over the same memoized evaluations
// (used_fallback = true). Spaces no larger than the evaluation budget are
// simply measured exhaustively, making the result exact.
TuneResult PredictiveSearch(const std::vector<ParamRange>& space, const EvalFn& eval,
                            PredictiveOptions opts = {});

// Remembers tuned configurations per problem signature, so repeated problems
// skip the search entirely — mirroring the compiled-binary cache one level
// up. Optionally *persistent*: a cache constructed with a file path loads
// any previously stored entries (a missing, corrupt, truncated, or
// version-mismatched file is treated as empty, never fatal) and every
// Store() writes the merged entry set back through an atomic temp-file
// rename, so concurrent processes sharing the path never observe a torn
// file and late writers do not drop earlier writers' entries.
//
// Thread-safety contract (guaranteed): Lookup, Store, Flush, size, and
// LookupOrCompute may be called concurrently from any number of threads —
// the entry map is guarded by an internal mutex, and Flush's read-merge-write
// of the backing file runs outside that mutex (file I/O never blocks lookups)
// but is serialized against other in-process flushes so interleaved
// read-merge-write cycles cannot drop a concurrent Store's entry from disk.
// This is what lets N scheduler shards (sched::FleetScheduler) share one
// fleet-wide cache: same-device shards reuse each other's tuned entries with
// no external locking. Cross-process sharing remains safe through the atomic
// file protocol, exactly as before.
class TuningCache {
 public:
  TuningCache() = default;  // in-memory only
  explicit TuningCache(std::string path);

  // Canonical cache key: every entry is keyed by what the tuned numbers
  // depend on — the kernel/app identity, the device, and the problem
  // signature (geometry, not data).
  static std::string MakeKey(const std::string& kernel, const std::string& device,
                             const std::string& problem_signature);

  std::optional<Config> Lookup(const std::string& key) const;
  void Store(const std::string& key, Config config);
  std::size_t size() const;
  const std::string& path() const { return path_; }

  // Single-flight cache-or-search: returns the cached configuration for
  // `key`, or runs `compute` (outside every cache lock — it is typically a
  // full tuning search), stores its result, and returns it. Concurrent
  // callers racing on the same cold key run `compute` exactly once and share
  // the winner — the fleet-sharing primitive: the first shard to need a
  // (kernel, device, signature) pays the search, every other shard hits.
  // `compute` exceptions propagate to every waiter and nothing is stored.
  Config LookupOrCompute(const std::string& key, const std::function<Config()>& compute);

  // Serializes the current entries to the bound path (no-op when unbound).
  // Automatic on Store; exposed for tests and tooling. Returns false on I/O
  // failure.
  bool Flush() const;

 private:
  // One in-flight LookupOrCompute search per key; waiters share the outcome.
  struct ComputeFlight;

  void LoadFromDisk();

  std::string path_;  // empty = in-memory only
  mutable std::mutex mu_;  // guards entries_ and flights_
  // Serializes Flush's read-merge-write file cycle (held without mu_, so
  // file I/O never blocks Lookup/Store).
  mutable std::mutex flush_mu_;
  std::map<std::string, Config> entries_;
  std::map<std::string, std::shared_ptr<ComputeFlight>> flights_;
};

}  // namespace kspec::tune
