#include "tune/tuner.hpp"

#include <cmath>
#include <limits>

#include "support/status.hpp"

namespace kspec::tune {

namespace {

// Safely evaluates one configuration; infeasible points become +inf.
double TryEval(const EvalFn& eval, const Config& cfg, TuneResult* result) {
  double ms = std::numeric_limits<double>::infinity();
  try {
    ms = eval(cfg);
    if (!std::isfinite(ms)) ms = std::numeric_limits<double>::infinity();
  } catch (const Error&) {
    ms = std::numeric_limits<double>::infinity();
  }
  if (std::isinf(ms)) {
    ++result->skipped;
  } else {
    ++result->evaluated;
    result->history.push_back({cfg, ms});
  }
  return ms;
}

}  // namespace

TuneResult GridSearch(const std::vector<ParamRange>& space, const EvalFn& eval) {
  KSPEC_CHECK_MSG(!space.empty(), "empty tuning space");
  for (const auto& r : space) KSPEC_CHECK_MSG(!r.values.empty(), "empty range: " + r.name);

  TuneResult result;
  result.best_millis = std::numeric_limits<double>::infinity();

  std::vector<std::size_t> idx(space.size(), 0);
  while (true) {
    Config cfg;
    for (std::size_t d = 0; d < space.size(); ++d) {
      cfg[space[d].name] = space[d].values[idx[d]];
    }
    double ms = TryEval(eval, cfg, &result);
    if (ms < result.best_millis) {
      result.best_millis = ms;
      result.best = cfg;
    }
    // Odometer increment.
    std::size_t d = 0;
    while (d < space.size()) {
      if (++idx[d] < space[d].values.size()) break;
      idx[d] = 0;
      ++d;
    }
    if (d == space.size()) break;
  }
  return result;
}

TuneResult CoordinateDescent(const std::vector<ParamRange>& space, const EvalFn& eval,
                             int max_rounds) {
  KSPEC_CHECK_MSG(!space.empty(), "empty tuning space");
  for (const auto& r : space) KSPEC_CHECK_MSG(!r.values.empty(), "empty range: " + r.name);

  TuneResult result;
  result.best_millis = std::numeric_limits<double>::infinity();

  // Evaluations are memoized so multi-start restarts never re-measure a
  // configuration (kernel-cache-style reuse).
  std::map<Config, double> memo;
  auto eval_memo = [&](const Config& cfg) -> double {
    auto it = memo.find(cfg);
    if (it != memo.end()) return it->second;
    double ms = TryEval(eval, cfg, &result);
    memo[cfg] = ms;
    return ms;
  };

  // Multi-start: descend once from every value of the first dimension. GPU
  // cost surfaces are only piecewise-smooth (feasibility cliffs from
  // occupancy and coverage constraints), so single-seed descent can trap.
  for (std::int64_t seed : space[0].values) {
    Config current;
    for (const auto& r : space) current[r.name] = r.values.front();
    current[space[0].name] = seed;
    double current_ms = eval_memo(current);

    if (std::isinf(current_ms)) {
      // Walk remaining dimensions looking for any feasible start.
      for (std::size_t d = 1; d < space.size() && std::isinf(current_ms); ++d) {
        for (std::int64_t v : space[d].values) {
          Config probe = current;
          probe[space[d].name] = v;
          double ms = eval_memo(probe);
          if (!std::isinf(ms)) {
            current = probe;
            current_ms = ms;
            break;
          }
        }
      }
      if (std::isinf(current_ms)) continue;
    }

    for (int round = 0; round < max_rounds; ++round) {
      bool improved = false;
      for (const auto& r : space) {
        for (std::int64_t v : r.values) {
          if (v == current[r.name]) continue;
          Config probe = current;
          probe[r.name] = v;
          double ms = eval_memo(probe);
          if (ms < current_ms) {
            current = probe;
            current_ms = ms;
            improved = true;
          }
        }
      }
      if (!improved) break;
    }

    if (current_ms < result.best_millis) {
      result.best_millis = current_ms;
      result.best = current;
    }
  }
  return result;
}

std::optional<Config> TuningCache::Lookup(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void TuningCache::Store(const std::string& key, Config config) {
  entries_[key] = std::move(config);
}

}  // namespace kspec::tune
