#include "tune/tuner.hpp"

#include <cmath>
#include <limits>

#include "support/status.hpp"
#include "tune/search_internal.hpp"

namespace kspec::tune {

namespace internal {

double Evaluator::operator()(const Config& cfg) {
  auto it = memo_.find(cfg);
  if (it != memo_.end()) return it->second;

  double ms = std::numeric_limits<double>::infinity();
  if (prune_ && prune_(cfg)) {
    if (count_pruned_) ++result_->pruned_static;
  } else {
    try {
      ms = eval_(cfg);
      if (!std::isfinite(ms)) ms = std::numeric_limits<double>::infinity();
    } catch (const Error&) {
      ms = std::numeric_limits<double>::infinity();
    }
    if (std::isinf(ms)) {
      ++result_->skipped;
    } else {
      ++result_->evaluated;
      result_->history.push_back({cfg, ms});
    }
  }
  memo_[cfg] = ms;
  return ms;
}

bool Evaluator::Measured(const Config& cfg) const {
  auto it = memo_.find(cfg);
  return it != memo_.end() && std::isfinite(it->second);
}

void CheckSpace(const std::vector<ParamRange>& space) {
  KSPEC_CHECK_MSG(!space.empty(), "empty tuning space");
  for (const auto& r : space) KSPEC_CHECK_MSG(!r.values.empty(), "empty range: " + r.name);
}

std::vector<Config> EnumerateSpace(const std::vector<ParamRange>& space) {
  std::vector<Config> out;
  std::size_t total = 1;
  for (const auto& r : space) total *= r.values.size();
  out.reserve(total);
  std::vector<std::size_t> idx(space.size(), 0);
  while (true) {
    Config cfg;
    for (std::size_t d = 0; d < space.size(); ++d) {
      cfg[space[d].name] = space[d].values[idx[d]];
    }
    out.push_back(std::move(cfg));
    std::size_t d = 0;
    while (d < space.size()) {
      if (++idx[d] < space[d].values.size()) break;
      idx[d] = 0;
      ++d;
    }
    if (d == space.size()) break;
  }
  return out;
}

void Offer(TuneResult* result, const Config& cfg, double ms) {
  if (!std::isfinite(ms)) return;
  if (result->status != TuneStatus::kOk || ms < result->best_millis) {
    result->best = cfg;
    result->best_millis = ms;
    result->status = TuneStatus::kOk;
  }
}

void CoordinateDescentInto(const std::vector<ParamRange>& space, Evaluator& ev,
                           TuneResult* result, int max_rounds,
                           std::size_t max_evaluations) {
  auto budget_left = [&] {
    return max_evaluations == 0 || ev.measured_count() < max_evaluations;
  };

  // Multi-start: descend once from every value of the first dimension. GPU
  // cost surfaces are only piecewise-smooth (feasibility cliffs from
  // occupancy and coverage constraints), so single-seed descent can trap.
  for (std::int64_t seed : space[0].values) {
    if (!budget_left()) return;
    Config current;
    for (const auto& r : space) current[r.name] = r.values.front();
    current[space[0].name] = seed;
    double current_ms = ev(current);

    if (std::isinf(current_ms)) {
      // Walk remaining dimensions looking for any feasible start.
      for (std::size_t d = 1; d < space.size() && std::isinf(current_ms); ++d) {
        for (std::int64_t v : space[d].values) {
          if (!budget_left()) return;
          Config probe = current;
          probe[space[d].name] = v;
          double ms = ev(probe);
          if (!std::isinf(ms)) {
            current = probe;
            current_ms = ms;
            break;
          }
        }
      }
      if (std::isinf(current_ms)) continue;
    }

    for (int round = 0; round < max_rounds; ++round) {
      bool improved = false;
      for (const auto& r : space) {
        for (std::int64_t v : r.values) {
          if (v == current[r.name]) continue;
          if (!budget_left()) {
            Offer(result, current, current_ms);
            return;
          }
          Config probe = current;
          probe[r.name] = v;
          double ms = ev(probe);
          if (ms < current_ms) {
            current = probe;
            current_ms = ms;
            improved = true;
          }
        }
      }
      if (!improved) break;
    }

    Offer(result, current, current_ms);
  }
}

}  // namespace internal

TuneResult GridSearch(const std::vector<ParamRange>& space, const EvalFn& eval,
                      const PruneFn& prune) {
  internal::CheckSpace(space);
  TuneResult result;
  internal::Evaluator ev(eval, prune, &result);
  for (const Config& cfg : internal::EnumerateSpace(space)) {
    internal::Offer(&result, cfg, ev(cfg));
  }
  if (!result.ok()) result.best_millis = std::numeric_limits<double>::infinity();
  return result;
}

TuneResult CoordinateDescent(const std::vector<ParamRange>& space, const EvalFn& eval,
                             int max_rounds, const PruneFn& prune) {
  internal::CheckSpace(space);
  TuneResult result;
  internal::Evaluator ev(eval, prune, &result);
  internal::CoordinateDescentInto(space, ev, &result, max_rounds);
  if (!result.ok()) result.best_millis = std::numeric_limits<double>::infinity();
  return result;
}

}  // namespace kspec::tune
