// Leveled logging with a pluggable sink.
//
// GPU-PF uses this to emit the refresh/execution traces shown in the
// dissertation's Appendix G. The default sink writes to stderr; tests install
// a capturing sink.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace kspec {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

const char* LogLevelName(LogLevel level);

using LogSink = std::function<void(LogLevel, const std::string&)>;

// Global log configuration. Not thread-safe to reconfigure concurrently with
// logging; configure once at startup (or per test).
class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Replaces the sink; returns the previous one so tests can restore it.
  LogSink set_sink(LogSink sink);

  void Write(LogLevel level, const std::string& msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  LogSink sink_;
};

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance().Write(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace kspec

#define KSPEC_LOG(lvl_)                                                                  \
  if (static_cast<int>(lvl_) < static_cast<int>(::kspec::Logger::Instance().level())) \
    ;                                                                                  \
  else                                                                                 \
    ::kspec::detail::LogMessage(lvl_).stream()

#define KSPEC_LOG_INFO KSPEC_LOG(::kspec::LogLevel::kInfo)
#define KSPEC_LOG_DEBUG KSPEC_LOG(::kspec::LogLevel::kDebug)
#define KSPEC_LOG_WARN KSPEC_LOG(::kspec::LogLevel::kWarn)
