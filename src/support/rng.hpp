// Deterministic pseudo-random generation for synthetic workloads.
//
// All data sets in the benchmark suite are generated from fixed seeds so every
// run (and every implementation variant) sees identical inputs.
#pragma once

#include <cstdint>
#include <span>

namespace kspec {

// xoshiro256** — small, fast, and good enough for synthetic image content.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    auto rotl = [](std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }
  float NextFloat() { return static_cast<float>(NextDouble()); }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(NextDouble() * static_cast<double>(hi - lo + 1));
  }

  void FillUniform(std::span<float> out, float lo = 0.0f, float hi = 1.0f) {
    for (auto& v : out) v = lo + (hi - lo) * NextFloat();
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace kspec
