// CSV and fixed-width table writers used by the benchmark harness to emit the
// paper's tables and the data behind its contour figures.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace kspec {

// Accumulates rows of string cells and renders them either as CSV or as an
// aligned ASCII table (the format the bench binaries print).
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  // Adds a row; pads or truncates to the header width.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats arbitrary cell types with to_string-ish rules.
  class RowBuilder {
   public:
    explicit RowBuilder(Table* table) : table_(table) {}
    RowBuilder& operator<<(const std::string& s) { cells_.push_back(s); return *this; }
    RowBuilder& operator<<(const char* s) { cells_.emplace_back(s); return *this; }
    RowBuilder& operator<<(double v);
    RowBuilder& operator<<(std::int64_t v) { cells_.push_back(std::to_string(v)); return *this; }
    RowBuilder& operator<<(int v) { cells_.push_back(std::to_string(v)); return *this; }
    RowBuilder& operator<<(unsigned v) { cells_.push_back(std::to_string(v)); return *this; }
    RowBuilder& operator<<(std::size_t v) { cells_.push_back(std::to_string(v)); return *this; }
    ~RowBuilder();

   private:
    Table* table_;
    std::vector<std::string> cells_;
  };

  RowBuilder Row() { return RowBuilder(this); }

  void WriteCsv(std::ostream& os) const;
  void WriteAscii(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Escapes a CSV field per RFC 4180 (quotes fields containing , " or newline).
std::string CsvEscape(const std::string& field);

}  // namespace kspec
