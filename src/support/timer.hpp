// Wall-clock timing for host-side measurements (compile overhead, CPU refs).
// The vgpu simulator never uses wall time; its results are simulated cycles.
#pragma once

#include <chrono>

namespace kspec {

class WallTimer {
 public:
  WallTimer() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kspec
