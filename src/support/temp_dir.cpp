#include "support/temp_dir.hpp"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <utility>
#include <vector>

namespace kspec {

namespace {

std::string TempRoot() {
  // std::filesystem::temp_directory_path can throw on exotic setups; this
  // helper must not. TMPDIR mirrors what mkstemp-family users expect.
  if (const char* env = std::getenv("TMPDIR"); env && *env) return env;
  return "/tmp";
}

std::string Sanitize(const std::string& prefix) {
  std::string out;
  out.reserve(prefix.size());
  for (char c : prefix) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? std::string("kspec_tmp_") : out;
}

}  // namespace

ScopedTempDir::ScopedTempDir(const std::string& prefix) {
  const std::string tmpl_str = TempRoot() + "/" + Sanitize(prefix) + "XXXXXX";
  std::vector<char> tmpl(tmpl_str.begin(), tmpl_str.end());
  tmpl.push_back('\0');
  if (::mkdtemp(tmpl.data()) != nullptr) path_.assign(tmpl.data());
}

ScopedTempDir::~ScopedTempDir() { Remove(); }

ScopedTempDir::ScopedTempDir(ScopedTempDir&& other) noexcept
    : path_(std::move(other.path_)) {
  other.path_.clear();
}

ScopedTempDir& ScopedTempDir::operator=(ScopedTempDir&& other) noexcept {
  if (this != &other) {
    Remove();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

std::string ScopedTempDir::File(const std::string& name) const {
  return path_ + "/" + name;
}

std::string ScopedTempDir::Release() {
  std::string out = std::move(path_);
  path_.clear();
  return out;
}

void ScopedTempDir::Remove() noexcept {
  if (path_.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best-effort by contract
  path_.clear();
}

}  // namespace kspec
