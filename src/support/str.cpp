#include "support/str.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace kspec {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view s) {
  const char* ws = " \t\r\n\f\v";
  std::size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  std::size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::uint64_t Fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string HumanNumber(double v, int digits) {
  return Format("%.*g", digits, v);
}

}  // namespace kspec
