#include "support/serialize.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace kspec {

void ByteWriter::U32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::F32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  U32(bits);
}

void ByteWriter::F64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  U64(bits);
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  Raw(s.data(), s.size());
}

void ByteWriter::Raw(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void ByteWriter::PatchU64(std::size_t offset, std::uint64_t v) {
  KSPEC_CHECK(offset + 8 <= buf_.size());
  for (int i = 0; i < 8; ++i) buf_[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void ByteReader::Need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw SerializeError("truncated input: need " + std::to_string(n) + " bytes at offset " +
                         std::to_string(pos_) + " of " + std::to_string(data_.size()));
  }
}

std::uint8_t ByteReader::U8() {
  Need(1);
  return data_[pos_++];
}

std::uint32_t ByteReader::U32() {
  Need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::U64() {
  Need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

float ByteReader::F32() {
  std::uint32_t bits = U32();
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

double ByteReader::F64() {
  std::uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string ByteReader::Str() {
  std::uint32_t n = U32();
  Need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::uint64_t Fnv1aBytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

bool ReadFileBytes(const std::string& path, std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  std::streampos end = in.tellg();
  if (end < 0) return false;
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<std::size_t>(end));
  if (!out->empty()) in.read(reinterpret_cast<char*>(out->data()), end);
  return static_cast<bool>(in);
}

bool WriteFileAtomic(const std::string& path, std::span<const std::uint8_t> bytes) {
  // The temp file lives next to the target so the rename stays within one
  // filesystem (rename across devices is not atomic), and its name is unique
  // per process and per call: concurrent publishers of the same target must
  // not truncate each other's half-written temp file, or the loser's rename
  // would publish the winner's torn bytes.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync BEFORE the rename: rename orders the directory entry, not the data
  // blocks, so a crash between rename and writeback could otherwise surface a
  // truncated-but-renamed file. Readers must never see that.
  const bool synced = ::fsync(fd) == 0;
  if (::close(fd) != 0 || !synced) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace kspec
