// Scoped temporary directories.
//
// One RAII owner for the mkdtemp/remove_all boilerplate that benches, the
// netd/cache tests, and the native tier's build scratch dirs all need: a
// unique directory under the system temp root, recursively removed on
// destruction. Creation never throws — a failed mkdtemp leaves valid() false
// so callers on throwaway paths (benchmarks, best-effort scratch space) can
// degrade instead of crashing; callers that need the directory check valid().
#pragma once

#include <string>

namespace kspec {

class ScopedTempDir {
 public:
  // Creates /tmp-root/<prefix>XXXXXX. The prefix is sanitized to a path-safe
  // token; pass something identifying the subsystem ("kspec_netd_",
  // "kspec_native_") so leftover dirs from crashed runs are attributable.
  explicit ScopedTempDir(const std::string& prefix = "kspec_tmp_");

  // Removes the directory and everything under it (best-effort) unless
  // Release() was called.
  ~ScopedTempDir();

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;
  ScopedTempDir(ScopedTempDir&& other) noexcept;
  ScopedTempDir& operator=(ScopedTempDir&& other) noexcept;

  bool valid() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  // "<path>/<name>" — the one-liner every call site wants.
  std::string File(const std::string& name) const;

  // Detaches ownership: the directory survives destruction (e.g. handing a
  // build log to the user after a failed native compile). Returns the path.
  std::string Release();

 private:
  void Remove() noexcept;

  std::string path_;
};

}  // namespace kspec
