// Small integer-math helpers shared by the simulator, compiler, and apps.
#pragma once

#include <cstdint>
#include <type_traits>

#include "support/status.hpp"

namespace kspec {

// Ceiling division for non-negative integers.
template <typename T>
constexpr T CeilDiv(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return (a + b - 1) / b;
}

// Rounds `v` up to the next multiple of `align` (align > 0).
template <typename T>
constexpr T AlignUp(T v, T align) {
  static_assert(std::is_integral_v<T>);
  return CeilDiv(v, align) * align;
}

// Rounds `v` down to a multiple of `align`.
template <typename T>
constexpr T AlignDown(T v, T align) {
  static_assert(std::is_integral_v<T>);
  return (v / align) * align;
}

constexpr bool IsPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Floor of log2; requires v > 0.
constexpr unsigned ILog2(std::uint64_t v) {
  unsigned r = 0;
  while (v >>= 1) ++r;
  return r;
}

// Next power of two >= v (v >= 1).
constexpr std::uint64_t NextPow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace kspec
