// Binary serialization primitives and atomic file I/O for the persistent
// specialization cache.
//
// ByteWriter/ByteReader encode values in a fixed little-endian layout so that
// cache artifacts written by one process deserialize identically in another.
// Readers are bounds-checked: any overrun throws SerializeError, which cache
// consumers treat as "corrupt artifact, recompile" rather than a crash.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace kspec {

// A malformed, truncated, or version-incompatible serialized artifact.
class SerializeError : public Error {
 public:
  explicit SerializeError(const std::string& what) : Error("serialize error: " + what) {}
};

class ByteWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F32(float v);
  void F64(double v);
  // Length-prefixed string (u32 length + raw bytes).
  void Str(std::string_view s);
  void Raw(const void* data, std::size_t n);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  // Overwrites 8 bytes at `offset` (for back-patching checksums/sizes).
  void PatchU64(std::size_t offset, std::uint64_t v);

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t U8();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  float F32();
  double F64();
  std::string Str();

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  std::span<const std::uint8_t> Rest() const { return data_.subspan(pos_); }

 private:
  void Need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// FNV-1a over a raw byte range (same function as Fnv1a(string_view)); used as
// the cache artifact content checksum.
std::uint64_t Fnv1aBytes(const void* data, std::size_t n);

// Reads a whole file. Returns false (without throwing) if the file does not
// exist or cannot be read.
bool ReadFileBytes(const std::string& path, std::vector<std::uint8_t>* out);

// Writes `bytes` to `path` via a uniquely named temp file + fsync + rename so
// that (a) concurrent readers never observe a half-written artifact, (b) two
// concurrent publishers of the same path never corrupt each other (last
// complete rename wins), and (c) a crash right after the rename cannot
// surface a truncated-but-renamed file. Returns false on any I/O failure.
bool WriteFileAtomic(const std::string& path, std::span<const std::uint8_t> bytes);

}  // namespace kspec
