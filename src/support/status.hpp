// Lightweight error handling used throughout the library.
//
// Recoverable failures (bad kernel source, invalid launch configurations,
// out-of-range parameters) are reported as exceptions derived from
// kspec::Error so callers can distinguish subsystem failures. Programming
// errors use KSPEC_CHECK, which throws InternalError with location context.
#pragma once

#include <stdexcept>
#include <string>

namespace kspec {

// Base class for all recoverable errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Kernel-C compilation failure (syntax, semantic, or preprocessor error).
class CompileError : public Error {
 public:
  explicit CompileError(const std::string& what) : Error("compile error: " + what) {}
};

// Invalid use of the vgpu device model (bad launch config, OOB access, ...).
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what) : Error("device error: " + what) {}
};

// Invalid use of the GPU-PF pipeline API.
class PipelineError : public Error {
 public:
  explicit PipelineError(const std::string& what) : Error("pipeline error: " + what) {}
};

// Invariant violation inside the library itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error("internal error: " + what) {}
};

namespace detail {
[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::string what = std::string(file) + ":" + std::to_string(line) +
                     ": check failed: " + expr;
  if (!msg.empty()) what += " — " + msg;
  throw InternalError(what);
}
}  // namespace detail

}  // namespace kspec

#define KSPEC_CHECK(expr)                                                     \
  do {                                                                        \
    if (!(expr)) ::kspec::detail::CheckFailed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define KSPEC_CHECK_MSG(expr, msg)                                             \
  do {                                                                         \
    if (!(expr)) ::kspec::detail::CheckFailed(#expr, __FILE__, __LINE__, msg); \
  } while (0)
