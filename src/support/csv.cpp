#include "support/csv.hpp"

#include <algorithm>

#include "support/str.hpp"

namespace kspec {

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::operator<<(double v) {
  cells_.push_back(Format("%.4g", v));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_->AddRow(std::move(cells_)); }

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void Table::WriteCsv(std::ostream& os) const {
  std::vector<std::string> escaped;
  escaped.reserve(header_.size());
  for (const auto& h : header_) escaped.push_back(CsvEscape(h));
  os << Join(escaped, ",") << "\n";
  for (const auto& row : rows_) {
    escaped.clear();
    for (const auto& cell : row) escaped.push_back(CsvEscape(cell));
    os << Join(escaped, ",") << "\n";
  }
}

void Table::WriteAscii(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i) width[i] = std::max(width[i], row[i].size());

  auto write_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t i = 0; i < header_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(width[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };

  write_row(header_);
  os << "|";
  for (std::size_t i = 0; i < header_.size(); ++i) os << std::string(width[i] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) write_row(row);
}

}  // namespace kspec
