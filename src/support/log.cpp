#include "support/log.hpp"

#include <cstdio>

namespace kspec {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& msg) {
    std::fprintf(stderr, "[%s] %s\n", LogLevelName(level), msg.c_str());
  };
}

LogSink Logger::set_sink(LogSink sink) {
  LogSink old = std::move(sink_);
  sink_ = std::move(sink);
  return old;
}

void Logger::Write(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  if (sink_) sink_(level, msg);
}

}  // namespace kspec
