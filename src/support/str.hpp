// String helpers used by the preprocessor, lexer, loggers, and table writers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kspec {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// 64-bit FNV-1a hash, used for kernel-cache keys.
std::uint64_t Fnv1a(std::string_view s);

// Renders a double with `digits` significant digits (for table output).
std::string HumanNumber(double v, int digits = 3);

}  // namespace kspec
